"""Reverse-mode automatic differentiation on NumPy arrays.

This module implements the :class:`Tensor` class that underpins every
neural-network component in :mod:`repro.nn`.  A ``Tensor`` wraps a NumPy
array together with an optional gradient buffer and a closure that knows
how to propagate gradients to its parents.  Calling :meth:`Tensor.backward`
on a scalar loss walks the recorded computation graph in reverse
topological order, exactly like PyTorch's eager autograd.

Only the operations required by the paper's models (and their tests) are
implemented, but each one supports full NumPy broadcasting with correct
gradient "unbroadcasting".
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "preserve_float64",
    "float64_preserved",
    "inference_precision",
    "inference_dtype",
]

class _TensorFlags(threading.local):
    """Per-thread autograd/dtype mode flags.

    Thread-local (like ``torch.no_grad``) so that inference threads —
    e.g. ``InferenceEngine.stream(workers=N)`` calling ``predict()``
    concurrently — cannot tear the enter/exit save-restore of a shared
    flag and leave graph recording disabled for the whole process.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.keep_float64 = False
        self.keep_float16 = False


_FLAGS = _TensorFlags()


class no_grad:
    """Context manager that disables graph recording.

    Mirrors ``torch.no_grad()``: inside the block, operations on tensors
    produce result tensors with ``requires_grad=False`` and no parents, so
    inference does not accumulate a computation graph.  The flag is
    thread-local; entering in one thread does not affect the others.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _FLAGS.grad_enabled
        _FLAGS.grad_enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _FLAGS.grad_enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _FLAGS.grad_enabled


class preserve_float64:
    """Context manager that opts out of the float32 dtype policy.

    By default every :class:`Tensor` stores float32 — including float64
    inputs, which are *downcast* so that a stray float64 array can never
    silently promote a whole forward pass to double precision and halve
    GEMM throughput.  Inside this context float64 arrays keep their
    dtype, which the numerical-gradient test helpers rely on::

        with preserve_float64():
            t = Tensor(np.zeros(3, dtype=np.float64))  # stays float64
    """

    def __enter__(self) -> "preserve_float64":
        self._previous = _FLAGS.keep_float64
        _FLAGS.keep_float64 = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        _FLAGS.keep_float64 = self._previous


def float64_preserved() -> bool:
    """Whether :class:`Tensor` currently keeps float64 inputs as float64."""
    return _FLAGS.keep_float64


class inference_precision:
    """Context manager selecting the inference activation storage dtype.

    ``inference_precision("float16")`` lets float16 arrays keep their
    dtype inside :class:`Tensor` (instead of being promoted to float32
    by the dtype policy), enabling the reduced-precision serving path:
    activations are *stored* half-precision between layers while every
    GEMM still *accumulates* in float32 (see ``repro.nn.ops.conv2d``).
    ``inference_precision("float32")`` is the identity and exists so the
    precision can be threaded through call sites unconditionally::

        with nn.no_grad(), nn.inference_precision("float16"):
            out = model(nn.Tensor(x.astype(np.float16)))

    Training numerics are untouched: the flag only widens what the
    dtype policy accepts, and nothing on the training path constructs
    float16 arrays.  The flag is thread-local, like :class:`no_grad`.
    """

    _DTYPES = {"float32": np.float32, "float16": np.float16}

    def __init__(self, precision: str = "float32") -> None:
        if precision not in self._DTYPES:
            raise ValueError(
                f"unknown inference precision {precision!r}; "
                f"expected one of {sorted(self._DTYPES)}"
            )
        self.precision = precision

    def __enter__(self) -> "inference_precision":
        self._previous = _FLAGS.keep_float16
        _FLAGS.keep_float16 = self.precision == "float16"
        return self

    def __exit__(self, *exc_info: object) -> None:
        _FLAGS.keep_float16 = self._previous


def inference_dtype() -> np.dtype:
    """Storage dtype of the active inference-precision mode."""
    return np.dtype(np.float16 if _FLAGS.keep_float16 else np.float32)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast dimension.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Data is stored as ``float32`` — the
        precision the paper's GPU framework would have used — and
        float64 inputs are *downcast* so mixed-precision GEMMs cannot
        sneak into the hot path.  Wrap construction in
        :class:`preserve_float64` to keep float64 end to end (numerical
        gradient checks), or pass ``dtype`` explicitly.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Explicit storage dtype, bypassing the float32 policy.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            if arr.dtype != np.dtype(dtype):
                arr = arr.astype(dtype)
        elif arr.dtype != np.float32 and not (
            (arr.dtype == np.float64 and _FLAGS.keep_float64)
            or (arr.dtype == np.float16 and _FLAGS.keep_float16)
        ):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _FLAGS.grad_enabled
        self._parents: tuple[Tensor, ...] = tuple(_parents) if _FLAGS.grad_enabled else ()
        self._backward = _backward if _FLAGS.grad_enabled else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result node, recording provenance if grad is enabled."""
        requires = _FLAGS.grad_enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Topological sort (iterative to survive deep graphs).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            # Free interior gradients and graph edges eagerly: only leaves
            # (no parents) keep their gradient after backward().
            if node._parents:
                if node is not self:
                    node.grad = None
                node._parents = ()
                node._backward = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: object) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: object) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: object) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: object) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function: exp is only ever taken of a
        # non-positive argument, so it cannot overflow.
        x = self.data
        exp_neg_abs = np.exp(-np.abs(x))
        out_data = np.where(x >= 0, 1.0 / (1.0 + exp_neg_abs), exp_neg_abs / (1.0 + exp_neg_abs))
        out_data = out_data.astype(x.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        """Clamp values; gradient is passed through inside the range only."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = np.ones_like(self.data)
                if low is not None:
                    mask = mask * (self.data > low)
                if high is not None:
                    mask = mask * (self.data < high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else n for i, n in enumerate(self.shape)]
                g = g.reshape(shape)
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == out_data).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(grad * mask)
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten all dimensions from ``start_dim`` onward."""
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data) if grad.ndim else grad * other_t.data)
                else:
                    g = grad @ np.swapaxes(other_t.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other_t._accumulate(_unbroadcast(g, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Comparison (non-differentiable, returns plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: object) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: object) -> np.ndarray:
        return self.data < as_tensor(other).data


def as_tensor(value: object) -> Tensor:
    """Coerce scalars / arrays / tensors to :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        slicer: list[slice] = [slice(None)] * grad.ndim
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)
