"""Weight initialisers.

He (Kaiming) initialisation is the default for layers followed by
(P)ReLU — the case for every layer of the paper's networks — while Xavier
(Glorot) initialisation is provided for sigmoid/tanh-gated layers such as
the highway transform gate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "he_uniform", "xavier_normal", "xavier_uniform", "fan_in_out"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weights.

    Dense weights are ``(out_features, in_features)``; convolutional
    weights are ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming-normal initialisation: ``std = sqrt(2 / fan_in)``."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming-uniform initialisation: bound ``sqrt(6 / fan_in)``."""
    fan_in, _ = fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal initialisation: ``std = sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation: bound ``sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
