"""Minimal dataset / data-loader abstractions for mini-batch training."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "DataLoader"]


class Dataset:
    """Abstract indexed dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, ...]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Zip several equal-length arrays into an indexed dataset."""

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int) -> tuple[np.ndarray, ...]:
        return tuple(a[index] for a in self.arrays)

    def select(self, indices: Sequence[int]) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        idx = np.asarray(indices)
        return ArrayDataset(*(a[idx] for a in self.arrays))


class DataLoader:
    """Iterate over mini-batches of an :class:`ArrayDataset`.

    Batches are stacks of the dataset's arrays; shuffling uses the loader's
    own :class:`numpy.random.Generator` so epochs are reproducible given a
    seed.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                return
            yield tuple(a[batch_idx] for a in self.dataset.arrays)
