"""Persist module weights to ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's :meth:`~repro.nn.module.Module.state_dict` to ``path``.

    Dotted parameter names are preserved as archive keys so the file can be
    reloaded into a freshly constructed module of the same architecture.
    """
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_module` into ``module`` (in place)."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
