"""Persist module weights to ``.npz`` archives.

Writes are atomic (write-then-rename) with an embedded SHA-256 checksum
via :mod:`repro.runtime.checkpoint`; loads verify the checksum and raise
:class:`~repro.runtime.errors.CorruptArtifactError` on truncated or
otherwise corrupt files.  Archives written by older versions (no
checksum) still load.
"""

from __future__ import annotations

import os

from ..runtime import atomic_savez, verified_load
from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's :meth:`~repro.nn.module.Module.state_dict` to ``path``.

    Dotted parameter names are preserved as archive keys so the file can be
    reloaded into a freshly constructed module of the same architecture.
    The write is atomic and checksummed.
    """
    atomic_savez(path, module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_module` into ``module`` (in place).

    Raises :class:`~repro.runtime.errors.CorruptArtifactError` when the
    archive is truncated or fails its integrity checksum.
    """
    module.load_state_dict(verified_load(path))
    return module
