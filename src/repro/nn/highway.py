"""Highway layers (Srivastava, Greff & Schmidhuber, 2015) — paper ref [17].

The classification network of the paper (Fig. 6) uses two highway layers
between its input and output fully connected layers.  A highway layer
computes

    y = T(x) * H(x) + (1 - T(x)) * x

where ``H`` is an affine transform with nonlinearity and ``T`` is a
sigmoid transform gate.  The gate bias is initialised negative so the
layer starts close to the identity, which is what makes deeper stacks
trainable.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Highway"]


class Highway(Module):
    """A single highway layer over flat feature vectors.

    Parameters
    ----------
    features:
        Input/output width (highway layers preserve dimensionality).
    gate_bias:
        Initial transform-gate bias.  Negative values bias the layer
        toward carrying the input through unchanged at the start of
        training (the original paper recommends -1 to -3).
    activation:
        Nonlinearity for the transform branch ``H``; ``'relu'``,
        ``'tanh'`` or ``'prelu'``.
    """

    def __init__(
        self,
        features: int,
        gate_bias: float = -1.0,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.features = features
        self.weight_h = Parameter(init.he_normal((features, features), rng))
        self.bias_h = Parameter(np.zeros(features, dtype=np.float32))
        self.weight_t = Parameter(init.xavier_normal((features, features), rng))
        self.bias_t = Parameter(np.full(features, gate_bias, dtype=np.float32))
        if activation not in ("relu", "tanh", "prelu"):
            raise ValueError(f"unsupported highway activation {activation!r}")
        self.activation = activation
        if activation == "prelu":
            self.alpha = Parameter(np.full(1, 0.25, dtype=np.float32))

    def _transform(self, x: Tensor) -> Tensor:
        h = x.matmul(self.weight_h.T) + self.bias_h
        if self.activation == "relu":
            return F.relu(h)
        if self.activation == "tanh":
            return h.tanh()
        return F.prelu(h, self.alpha)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.features:
            raise ValueError(
                f"Highway expects (N, {self.features}) inputs, got {x.shape}"
            )
        transform = self._transform(x)
        gate = (x.matmul(self.weight_t.T) + self.bias_t).sigmoid()
        return gate * transform + (1.0 - gate) * x

    def __repr__(self) -> str:
        return f"Highway({self.features}, activation={self.activation!r})"
