"""Convolution and pooling primitives with autograd support.

The band-wise CNN of the paper (Fig. 7) is built from 5x5 convolutions and
2x2 max-pooling.  These are implemented here on top of
:class:`repro.nn.tensor.Tensor` using an ``im2col`` formulation: the input
is expanded into a column matrix so that convolution becomes a single
matrix multiplication, which NumPy executes through BLAS.

Hot-path layout
---------------
The column matrix is materialised in the *natural* ``(N, C·KH·KW,
OH·OW)`` order of the sliding-window view — the copy then reads the
padded input as ``KH·KW`` shifted images (near-sequential) instead of
gathering one patch row per output pixel, and the GEMM
``weight (C_out, C·KH·KW) @ cols`` writes straight into the ``NCHW``
output buffer via ``out=``, with the bias added in place.  This removes
both full transposed copies of the previous formulation.  During
inference (no autograd recording) the column matrix additionally comes
from a shape-keyed, thread-local workspace cache, so steady-state
batches allocate only their output.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..perf.instrument import timed as _timed
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "pad2d",
    "workspace_stats",
    "workspace_total_stats",
    "workspace_metrics_source",
    "workspace_clear",
]

#: Workspaces are per-thread (the serving thread pool runs conv2d
#: concurrently) and capped so pathological shape churn cannot hoard
#: memory.
_MAX_WORKSPACES = 32

_workspaces = threading.local()


class _WorkspaceState:
    """One thread's cache plus counters; weakly tracked for aggregation.

    The only strong reference lives in the owning thread's
    ``threading.local`` slot, so a dead thread's state (and its cached
    buffers) is garbage-collected and silently drops out of
    :data:`_all_states` — :func:`workspace_total_stats` never counts
    memory that has already been freed.
    """

    __slots__ = ("cache", "hits", "misses", "evictions", "__weakref__")

    def __init__(self) -> None:
        self.cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def bytes(self) -> int:
        return sum(buf.nbytes for buf in self.cache.values())

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self.cache),
            "bytes": self.bytes(),
            "hit_rate": self.hits / total if total else 0.0,
        }


_all_states: "weakref.WeakSet[_WorkspaceState]" = weakref.WeakSet()
_all_states_lock = threading.Lock()


def _state() -> _WorkspaceState:
    state: _WorkspaceState | None = getattr(_workspaces, "state", None)
    if state is None:
        state = _WorkspaceState()
        _workspaces.state = state
        with _all_states_lock:
            _all_states.add(state)
    return state


def _bucket_batch(batch: int) -> int:
    """Round the batch dimension up to the next power of two (min 1).

    The daemon's adaptive micro-batches vary request to request; keyed
    on the exact batch size they would mint a fresh workspace per size
    and thrash past :data:`_MAX_WORKSPACES`.  Bucketing collapses every
    batch in ``(2^(k-1), 2^k]`` onto one allocation that is sliced down,
    so steady-state traffic reuses a handful of buffers.
    """
    return 1 << max(batch - 1, 0).bit_length()


def _workspace(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """A reusable scratch view for this thread.

    ``shape[0]`` (the batch dimension) is bucketed to the next power of
    two; the backing buffer is allocated at the bucket size and a
    ``shape[0]``-row view is returned.  Eviction is LRU, so a burst of
    unusual shapes cannot flush the steady-state working set the way the
    previous clear-everything policy did.
    """
    state = _state()
    cache = state.cache
    batch = shape[0]
    cap = _bucket_batch(batch)
    key = (cap, *shape[1:], np.dtype(dtype).str)
    buf = cache.get(key)
    if buf is None:
        state.misses += 1
        while len(cache) >= _MAX_WORKSPACES:
            cache.popitem(last=False)
            state.evictions += 1
        buf = np.empty((cap, *shape[1:]), dtype=dtype)
        cache[key] = buf
    else:
        state.hits += 1
        cache.move_to_end(key)
    return buf[:batch]


def workspace_stats() -> dict:
    """Hit/miss/eviction counters and size of this thread's cache."""
    return _state().stats()


def workspace_total_stats() -> dict:
    """Aggregate workspace stats across every live thread.

    The serving daemon's thread pool keeps one cache per worker thread;
    this is the process-wide view the `/metrics` gauges export.  Dead
    threads' states have been garbage-collected by the time they leave
    :data:`_all_states`, so ``bytes`` reflects memory still held.
    """
    totals = {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": 0,
        "bytes": 0,
        "threads": 0,
    }
    with _all_states_lock:
        states = list(_all_states)
    for state in states:
        stats = state.stats()
        totals["threads"] += 1
        for key in ("hits", "misses", "evictions", "entries", "bytes"):
            totals[key] += stats[key]
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


def workspace_metrics_source() -> dict:
    """:func:`workspace_total_stats` under the metrics-source contract.

    A telemetry session registers this with its
    :class:`~repro.obs.metrics.MetricsRegistry` so ``repro metrics``
    reports the conv workspace-cache behaviour next to the obs
    counters; the daemon mirrors the same numbers as ``nn.workspace_*``
    gauges on `/metrics`.
    """
    return workspace_total_stats()


def workspace_clear() -> None:
    """Drop this thread's workspace cache and reset the counters."""
    state = _state()
    state.cache = OrderedDict()
    state.hits = 0
    state.misses = 0
    state.evictions = 0


def _im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int
) -> np.ndarray:
    """Expand ``x`` (N, C, H, W) into sliding windows.

    Returns a **view** of shape (N, C, kernel_h, kernel_w, out_h, out_w);
    callers must not write through it.
    """
    batch, channels, height, width = x.shape
    out_h = (height - kernel_h) // stride + 1
    out_w = (width - kernel_w) // stride + 1
    s_n, s_c, s_h, s_w = x.strides
    shape = (batch, channels, kernel_h, kernel_w, out_h, out_w)
    strides = (s_n, s_c, s_h, s_w, s_h * stride, s_w * stride)
    return as_strided(x, shape=shape, strides=strides)


def _col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
) -> np.ndarray:
    """Scatter-add column gradients back to the (padded) input layout.

    ``cols`` has shape (N, C, kernel_h, kernel_w, out_h, out_w).
    """
    batch, channels, height, width = input_shape
    out_h = cols.shape[4]
    out_w = cols.shape[5]
    dx = np.zeros(input_shape, dtype=cols.dtype)
    for i in range(kernel_h):
        i_stop = i + stride * out_h
        for j in range(kernel_w):
            j_stop = j + stride * out_w
            dx[:, :, i:i_stop:stride, j:j_stop:stride] += cols[:, :, i, j]
    return dx


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    scratch_out: bool = False,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Filter bank of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Standard convolution hyper-parameters (symmetric).
    scratch_out:
        Borrow the output buffer from the thread-local workspace cache
        instead of allocating a fresh array (inference only — ignored
        when the call records a graph).  The returned tensor's data is
        only valid until the next same-shape borrow, so callers must
        fully consume it before issuing another identical conv — the
        layer-sequential inference loops do.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D weight, got shape {weight.shape}")
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )

    with _timed("nn.conv2d"):
        x_padded = pad2d(x.data, padding)
        batch = x_padded.shape[0]
        if x_padded.dtype == np.float16:
            # Promote before im2col: converting the contiguous input once
            # is vectorised, while an f16->f32 cast inside the strided
            # column copy is element-at-a-time.  Exact (f16 c f32), so
            # the GEMM sees the same float32 operands either way.
            x_padded = x_padded.astype(np.float32)
        cols = _im2col(x_padded, kernel_h, kernel_w, stride)
        out_h, out_w = cols.shape[4], cols.shape[5]
        k_dim = in_channels * kernel_h * kernel_w
        n_loc = out_h * out_w
        # float16 inputs accumulate in float32: result_type promotes the
        # column workspace and the GEMM, and the output is only narrowed
        # back to storage precision after the bias add.
        out_dtype = np.result_type(x.data.dtype, weight.data.dtype)

        requires = is_grad_enabled() and (
            x.requires_grad
            or weight.requires_grad
            or (bias is not None and bias.requires_grad)
        )
        if requires:
            # The column matrix is captured by the backward closure and
            # must outlive this call.
            col_matrix = np.empty((batch, k_dim, n_loc), dtype=out_dtype)
        else:
            col_matrix = _workspace((batch, k_dim, n_loc), out_dtype)
        np.copyto(
            col_matrix.reshape(batch, in_channels, kernel_h, kernel_w, out_h, out_w),
            cols,
        )

        w_matrix = weight.data.reshape(out_channels, k_dim)
        w_gemm = w_matrix if w_matrix.dtype == out_dtype else w_matrix.astype(out_dtype)
        if scratch_out and not requires:
            out_data = _workspace((batch, out_channels, n_loc), out_dtype)
        else:
            out_data = np.empty((batch, out_channels, n_loc), dtype=out_dtype)
        np.matmul(w_gemm, col_matrix, out=out_data)
        if bias is not None:
            out_data += bias.data.reshape(1, out_channels, 1)
        out_data = out_data.reshape(batch, out_channels, out_h, out_w)
        if not requires and x.data.dtype == np.float16:
            out_data = out_data.astype(np.float16)

        padded_shape = x_padded.shape

        def backward(grad: np.ndarray) -> None:
            grad3 = grad.reshape(batch, out_channels, n_loc)
            if weight.requires_grad:
                # dw[o, k] = sum_{n, l} grad[n, o, l] * cols[n, k, l]
                dw = np.matmul(grad3, col_matrix.transpose(0, 2, 1)).sum(axis=0)
                weight._accumulate(dw.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad3.sum(axis=(0, 2)))
            if x.requires_grad:
                dcols = np.matmul(w_matrix.T, grad3)  # (N, C*KH*KW, OH*OW)
                dx_padded = _col2im(
                    dcols.reshape(
                        batch, in_channels, kernel_h, kernel_w, out_h, out_w
                    ),
                    padded_shape,
                    kernel_h,
                    kernel_w,
                    stride,
                )
                if padding:
                    dx = dx_padded[:, :, padding:-padding, padding:-padding]
                else:
                    dx = dx_padded
                x._accumulate(dx)

        parents = (x, weight) if bias is None else (x, weight, bias)
        return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over square windows.

    The paper notes max-pooling is the most important component of the
    band-wise CNN since each stamp contains at most one supernova; the
    pooled response keeps the strongest local detection.

    Inputs whose spatial size is not divisible by the window are cropped at
    the bottom/right edge (floor behaviour, as in PyTorch's default).
    """
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"pooling window {kernel_size} too large for input {x.shape}")

    cols = _im2col(x.data, kernel_size, kernel_size, stride)
    if not (is_grad_enabled() and x.requires_grad):
        # Inference fast path: accumulate the window max with one
        # in-place ``maximum`` per tap — each ``cols[:, :, i, j]`` is a
        # strided view of the input, so nothing is materialised and the
        # reduction runs as k*k sequential passes instead of one
        # cache-hostile 6-D reduction.
        out = cols[:, :, 0, 0].copy()
        for i in range(kernel_size):
            for j in range(kernel_size):
                if i or j:
                    np.maximum(out, cols[:, :, i, j], out=out)
        return Tensor(out)

    # (N, C, K, K, oh, ow) -> (N, C, oh, ow, K*K)
    windows = cols.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels, out_h, out_w, kernel_size * kernel_size
    )
    arg = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dwindows = np.zeros(
            (batch, channels, out_h, out_w, kernel_size * kernel_size), dtype=grad.dtype
        )
        np.put_along_axis(dwindows, arg[..., None], grad[..., None], axis=-1)
        dcols = dwindows.reshape(
            batch, channels, out_h, out_w, kernel_size, kernel_size
        ).transpose(0, 1, 4, 5, 2, 3)
        x._accumulate(_col2im(dcols, x.shape, kernel_size, kernel_size, stride))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling — provided for the pooling ablation of Table 1."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"pooling window {kernel_size} too large for input {x.shape}")

    cols = _im2col(x.data, kernel_size, kernel_size, stride)
    out_data = cols.mean(axis=(2, 3))
    out_data = np.ascontiguousarray(out_data)
    scale = 1.0 / (kernel_size * kernel_size)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dcols = np.broadcast_to(
            (grad * scale)[:, :, None, None, :, :],
            (batch, channels, kernel_size, kernel_size, out_h, out_w),
        ).astype(grad.dtype)
        x._accumulate(_col2im(dcols, x.shape, kernel_size, kernel_size, stride))

    return Tensor._make(out_data, (x,), backward)
