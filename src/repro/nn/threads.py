"""BLAS thread-count guard for multi-process scoring.

NumPy's BLAS backend (OpenBLAS in the wheels this repo pins) sizes its
thread pool once, when the library is first loaded, from environment
variables such as ``OPENBLAS_NUM_THREADS``.  A scoring pool that spawns
N worker processes on an M-core machine must therefore pin each
worker's BLAS pool *before the worker imports numpy* — otherwise every
worker spins up M threads and N x M threads thrash the machine instead
of speeding it up.

:func:`pinned_blas_env` is the seam :mod:`repro.serve.pool` uses: the
parent sets the pinning variables in its own environment around
``Process.start()`` (spawned children inherit the environment at exec
time, before their numpy import) and restores them afterwards so the
parent's own BLAS pool is untouched.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

__all__ = [
    "BLAS_ENV_VARS",
    "cpu_count",
    "blas_backend_info",
    "blas_env_settings",
    "blas_thread_plan",
    "pinned_blas_env",
]

#: Every knob the common BLAS backends read at load time.  All are set
#: together — a machine may route through any of them (OpenBLAS, MKL,
#: BLIS via OMP, Accelerate) and an unset one silently defaults to
#: "every core".
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def cpu_count() -> int:
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def blas_backend_info() -> dict:
    """Name/version of the BLAS library numpy was built against.

    Parsed from ``np.show_config(mode="dicts")`` (numpy >= 1.25 on both
    supported majors); degrades to ``{"name": "unknown"}`` rather than
    raising, since this only feeds benchmark env blocks.
    """
    try:
        import numpy as np

        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        info = {
            "name": str(blas.get("name", "unknown")),
            "version": str(blas.get("version", "unknown")),
        }
    except Exception:  # noqa: BLE001 - diagnostics only, never fatal
        info = {"name": "unknown", "version": "unknown"}
    return info


def blas_env_settings() -> dict:
    """Current values of every pinning variable (``None`` = unset)."""
    return {var: os.environ.get(var) for var in BLAS_ENV_VARS}


def blas_thread_plan(workers: int, total_cores: int | None = None) -> int:
    """BLAS threads each of ``workers`` processes should get.

    An even split of the available cores, floored at 1 — the plan that
    keeps ``workers x blas_threads <= cores`` so the pool scales by
    process parallelism instead of oversubscribed BLAS pools.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total = total_cores if total_cores is not None else cpu_count()
    return max(1, total // workers)


@contextlib.contextmanager
def pinned_blas_env(threads: int) -> Iterator[None]:
    """Temporarily pin every BLAS env knob to ``threads`` in ``os.environ``.

    Used *in the parent* around spawning scoring workers: children
    exec'd inside the context inherit the pinned values before their
    numpy import; on exit the parent's environment is restored exactly
    (unset variables stay unset).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    saved = blas_env_settings()
    for var in BLAS_ENV_VARS:
        os.environ[var] = str(threads)
    try:
        yield
    finally:
        for var, old in saved.items():
            if old is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = old
