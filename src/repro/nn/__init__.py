"""A self-contained NumPy deep-learning framework.

The paper was implemented on a GPU deep-learning stack; this package
provides the equivalent substrate — reverse-mode autodiff, convolutional
and fully connected layers, batch normalisation, PReLU, highway layers,
losses and optimisers — in pure NumPy, so the reproduction has no
framework dependency.

Public API::

    from repro import nn
    from repro.nn import functional as F

    model = nn.Sequential(nn.Linear(10, 100), nn.ReLU(), nn.Linear(100, 1))
    loss = nn.MSELoss()(model(nn.Tensor(x)), y)
    loss.backward()
"""

from . import functional
from . import init
from .data import ArrayDataset, DataLoader, Dataset
from .highway import Highway
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import BCEWithLogitsLoss, CrossEntropyLoss, HuberLoss, L1Loss, MSELoss
from .module import Module, ModuleList, Parameter, Sequential
from .ops import (
    avg_pool2d,
    conv2d,
    max_pool2d,
    workspace_clear,
    workspace_metrics_source,
    workspace_stats,
    workspace_total_stats,
)
from .threads import (
    BLAS_ENV_VARS,
    blas_backend_info,
    blas_env_settings,
    blas_thread_plan,
    cpu_count,
    pinned_blas_env,
)
from .optim import SGD, Adam, Optimizer, StepLR, clip_grad_norm
from .serialization import load_module, save_module
from .tensor import (
    Tensor,
    as_tensor,
    concat,
    float64_preserved,
    inference_dtype,
    inference_precision,
    is_grad_enabled,
    no_grad,
    preserve_float64,
    stack,
)

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "preserve_float64",
    "float64_preserved",
    "inference_precision",
    "inference_dtype",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "PReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "Identity",
    "Highway",
    "MSELoss",
    "L1Loss",
    "HuberLoss",
    "BCEWithLogitsLoss",
    "CrossEntropyLoss",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "workspace_stats",
    "workspace_total_stats",
    "workspace_metrics_source",
    "workspace_clear",
    "BLAS_ENV_VARS",
    "blas_backend_info",
    "blas_env_settings",
    "blas_thread_plan",
    "cpu_count",
    "pinned_blas_env",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "ArrayDataset",
    "DataLoader",
    "Dataset",
    "save_module",
    "load_module",
]
