"""Neural-network layers used by the paper's models (Figs. 6-7).

All layers are thin stateful wrappers over :mod:`repro.nn.functional` and
:mod:`repro.nn.ops`, holding :class:`~repro.nn.module.Parameter` weights.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .ops import avg_pool2d, conv2d, max_pool2d
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "PReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "Identity",
]


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.he_normal((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        requires = is_grad_enabled() and (
            x.requires_grad
            or self.weight.requires_grad
            or (self.bias is not None and self.bias.requires_grad)
        )
        if not requires and self.out_features == 1 and x.ndim == 2:
            # Inference fast path for the scalar head: BLAS reroutes the
            # degenerate (M, K) @ (K, 1) product to GEMV, whose reduction
            # order varies with M — chunked and fused batches would then
            # disagree in the last bit.  einsum's fixed per-row reduction
            # is batch-size independent, which the fused/chunked parity
            # contract relies on.
            out = np.einsum("ij,j->i", x.data, self.weight.data.reshape(-1))
            out = out[:, None]
            if self.bias is not None:
                out = out + self.bias.data
            return Tensor(out)
        if not requires and x.ndim == 2 and x.shape[0] == 1:
            # Same BLAS quirk from the other side: a single-row batch
            # reroutes (1, K) @ (K, N) to GEMV.  Duplicating the row keeps
            # the product on the sgemm path every multi-row batch takes,
            # so a trailing 1-row chunk stays bit-identical to the same
            # row inside a larger batch.
            doubled = np.concatenate([x.data, x.data], axis=0)
            out = np.matmul(doubled, self.weight.data.T)[:1]
            if self.bias is not None:
                out = out + self.bias.data
            return Tensor(out)
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution with square kernels (paper uses 5x5)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.he_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(Module):
    """Max pooling (the paper's key locality device, Section 4)."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling, for the pooling ablation."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class _BatchNorm(Module):
    """Shared implementation of 1-D / 2-D batch normalisation [5]."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _axes_and_shape(self, x: Tensor) -> tuple[tuple[int, ...], tuple[int, ...]]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes, shape = self._axes_and_shape(x)
        if not self.training and not (
            is_grad_enabled() and (self.gamma.requires_grad or self.beta.requires_grad)
        ):
            # Inference fast path: fold the whole affine normalisation
            # into one per-channel multiply-add (no graph, 1 temporary).
            # float16 activations are computed in float32 (the multiply
            # promotes) and narrowed back to storage precision.
            scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
            shift = self.beta.data - self.running_mean * scale
            out = x.data * scale.reshape(shape)
            out += shift.reshape(shape)
            if out.dtype != x.data.dtype:
                out = out.astype(x.data.dtype)
            return Tensor(out)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            count = x.data.size // self.num_features
            unbiased = var * (count / max(count - 1, 1))
            self._update_buffer(
                "running_mean",
                ((1 - self.momentum) * self.running_mean + self.momentum * mean).astype(
                    np.float32
                ),
            )
            self._update_buffer(
                "running_var",
                ((1 - self.momentum) * self.running_var + self.momentum * unbiased).astype(
                    np.float32
                ),
            )
        else:
            mean = self.running_mean
            var = self.running_var
        mean_t = Tensor(mean.reshape(shape))
        std_t = Tensor(np.sqrt(var + self.eps).reshape(shape))
        normalised = (x - mean_t) / std_t
        return normalised * self.gamma.reshape(*shape) + self.beta.reshape(*shape)


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over (N, C) inputs."""

    def _axes_and_shape(self, x: Tensor) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C), got {x.shape}")
        return (0,), (1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over (N, C, H, W) inputs."""

    def _axes_and_shape(self, x: Tensor) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got {x.shape}")
        return (0, 2, 3), (1, self.num_features, 1, 1)


class PReLU(Module):
    """Parametric ReLU with a learnable per-channel (or shared) slope."""

    def __init__(self, num_parameters: int = 1, initial_slope: float = 0.25) -> None:
        super().__init__()
        self.alpha = Parameter(np.full(num_parameters, initial_slope, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.prelu(x, self.alpha)


class ReLU(Module):
    """Plain ReLU activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Flatten(Module):
    """Flatten trailing dimensions, keeping the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Identity(Module):
    """No-op layer, handy for ablations."""

    def forward(self, x: Tensor) -> Tensor:
        return x
