"""Stateless functional API over :class:`repro.nn.tensor.Tensor`.

Activations and helpers used by the paper's networks: parametric ReLU
(Fig. 7), sigmoid gates for the highway layers (Fig. 6) and the signed
logarithm applied to difference images before the CNN.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu",
    "leaky_relu",
    "prelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "signed_log10",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    mask = (x.data > 0).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with a fixed negative slope."""
    pos = x.data > 0
    scale = np.where(pos, 1.0, negative_slope).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * scale)

    return Tensor._make(x.data * scale, (x,), backward)


def prelu(x: Tensor, alpha: Tensor) -> Tensor:
    """Parametric ReLU: ``x`` if positive else ``alpha * x``.

    ``alpha`` may be a scalar tensor (shared slope) or have one entry per
    channel; a per-channel alpha of shape ``(C,)`` is broadcast over the
    spatial dimensions of a 4-D input.
    """
    alpha_data = alpha.data
    if x.ndim == 4 and alpha_data.ndim == 1 and alpha_data.shape[0] == x.shape[1]:
        alpha_view = alpha_data.reshape(1, -1, 1, 1)
    else:
        alpha_view = alpha_data

    if not (is_grad_enabled() and (x.requires_grad or alpha.requires_grad)):
        # Inference fast paths (no graph, no mask temporary).  With every
        # slope <= 1 — true at init (0.25) and for any trained slope that
        # stayed a leak — ``max(x, alpha * x)`` equals the branchy form
        # exactly, in two array passes.
        if np.all(alpha_data <= 1.0):
            out = x.data * alpha_view
            np.maximum(out, x.data, out=out)
            if out.dtype != x.data.dtype:
                out = out.astype(x.data.dtype)
            return Tensor(out)
        return Tensor(
            np.where(x.data > 0, x.data, alpha_view * x.data).astype(x.data.dtype)
        )

    pos = x.data > 0
    out_data = np.where(pos, x.data, alpha_view * x.data).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(pos, 1.0, alpha_view).astype(grad.dtype))
        if alpha.requires_grad:
            dalpha = grad * np.where(pos, 0.0, x.data)
            if alpha_data.ndim == 1 and x.ndim == 4 and alpha_data.shape[0] == x.shape[1]:
                dalpha = dalpha.sum(axis=(0, 2, 3))
            elif alpha_data.ndim == 1 and x.ndim == 2 and alpha_data.shape[0] == x.shape[1]:
                dalpha = dalpha.sum(axis=0)
            else:
                dalpha = np.array(dalpha.sum(), dtype=grad.dtype).reshape(alpha_data.shape)
            alpha._accumulate(dalpha.reshape(alpha_data.shape))

    return Tensor._make(out_data, (x, alpha), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic function (numerically stable)."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable via max subtraction)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable log-sum-exp)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def signed_log10(x: Tensor) -> Tensor:
    """The paper's input transform ``y = sgn(x) * log10(|x| + 1)``.

    Difference-image pixels span several orders of magnitude and can be
    negative; the signed logarithm compresses the dynamic range while
    keeping the sign of the residual (Section 4).
    """
    sign = np.sign(x.data)
    mag = np.abs(x.data)
    ln10 = np.log(10.0)
    out_data = (sign * np.log10(mag + 1.0)).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # d/dx sgn(x) log10(|x|+1) = 1 / ((|x|+1) ln 10) for x != 0.
            x._accumulate(grad / ((mag + 1.0) * ln10))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)
