"""Optimisers and learning-rate schedules.

Adam is the default for the paper's experiments; SGD with momentum is
provided for the from-scratch baseline of Fig. 12 and for ablations.

Both optimisers update parameters **in place** through per-parameter
scratch buffers, so a training step allocates no per-step temporaries
once warm.  The arithmetic keeps the exact operation order (and
two-operand commutations, which are bitwise-neutral in IEEE-754) of the
original out-of-place formulation, so checkpoints and resumed runs stay
bit-identical with earlier revisions.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..perf.instrument import timed as _timed
from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm"]


class Optimizer:
    """Base class: holds parameter references and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _scratch(self, index: int, slot: int = 0) -> np.ndarray:
        """Lazily allocated per-parameter scratch buffer (``slot`` selects
        between independent buffers live at the same time)."""
        buffers = self.__dict__.setdefault("_scratch_buffers", {})
        key = (index, slot)
        buf = buffers.get(key)
        param = self.parameters[index]
        if buf is None or buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            buf = np.empty_like(param.data)
            buffers[key] = buf
        return buf

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of the optimiser's mutable state (for checkpointing)."""
        return {"lr": np.asarray(self.lr, dtype=np.float64)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        with _timed("nn.optim.step"):
            for i, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
                if param.grad is None:
                    continue
                grad = param.grad
                if self.weight_decay:
                    scratch = self._scratch(i)
                    np.multiply(param.data, self.weight_decay, out=scratch)
                    scratch += grad  # == grad + wd * param (addition commutes)
                    grad = scratch
                if self.momentum:
                    velocity *= self.momentum
                    velocity += grad
                    update = velocity
                else:
                    update = grad
                step_buf = self._scratch(i, slot=1)
                np.multiply(update, self.lr, out=step_buf)
                param.data -= step_buf

    def state_dict(self) -> dict[str, np.ndarray]:
        """Learning rate plus per-parameter momentum buffers."""
        state = super().state_dict()
        for i, velocity in enumerate(self._velocity):
            state[f"velocity.{i}"] = velocity.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` (strict on buffer count)."""
        super().load_state_dict(state)
        for i in range(len(self._velocity)):
            self._velocity[i] = np.array(state[f"velocity.{i}"], copy=True)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        with _timed("nn.optim.step"):
            self._t += 1
            bias1 = 1.0 - self.beta1**self._t
            bias2 = 1.0 - self.beta2**self._t
            for i, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
                if param.grad is None:
                    continue
                grad = param.grad
                if self.weight_decay:
                    decayed = self._scratch(i)
                    np.multiply(param.data, self.weight_decay, out=decayed)
                    decayed += grad  # == grad + wd * param (addition commutes)
                    grad = decayed
                work = self._scratch(i, slot=1)
                m *= self.beta1
                np.multiply(grad, 1.0 - self.beta1, out=work)
                m += work
                v *= self.beta2
                np.multiply(grad, 1.0 - self.beta2, out=work)
                work *= grad  # == ((1 - beta2) * grad) * grad, original order
                v += work
                # update = lr * (m / bias1) / (sqrt(v / bias2) + eps)
                denom = self._scratch(i, slot=2)
                np.divide(v, bias2, out=denom)
                np.sqrt(denom, out=denom)
                denom += self.eps
                np.divide(m, bias1, out=work)
                work *= self.lr
                work /= denom
                param.data -= work

    def state_dict(self) -> dict[str, np.ndarray]:
        """Learning rate, step counter and per-parameter moment buffers."""
        state = super().state_dict()
        state["t"] = np.asarray(self._t, dtype=np.int64)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` (strict on buffer count)."""
        super().load_state_dict(state)
        self._t = int(state["t"])
        for i in range(len(self._m)):
            self._m[i] = np.array(state[f"m.{i}"], copy=True)
            self._v[i] = np.array(state[f"v.{i}"], copy=True)


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
