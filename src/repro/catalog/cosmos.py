"""Synthetic COSMOS-like galaxy catalogue.

The paper selects host galaxies from the public COSMOS archive with
0.1 <= photo-z <= 2.0 (Section 3, Fig. 3).  The archive images themselves
are not redistributable, so we generate a statistically similar catalogue:
positions over the ~1.4 deg x 1.4 deg COSMOS footprint, photo-z drawn from
a survey-like gamma distribution clipped to the paper's range, and galaxy
structural parameters (half-light radius, ellipticity, Sersic index,
apparent magnitude) with realistic redshift-dependent correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Galaxy", "CosmosCatalog", "COSMOS_FOOTPRINT"]

# RA/Dec bounds of the COSMOS field (degrees).
COSMOS_FOOTPRINT = {
    "ra_min": 149.42,
    "ra_max": 150.82,
    "dec_min": 1.50,
    "dec_max": 2.90,
}

PHOTO_Z_MIN = 0.1
PHOTO_Z_MAX = 2.0


@dataclass(frozen=True)
class Galaxy:
    """One catalogue galaxy.

    Attributes
    ----------
    galaxy_id:
        Stable integer identifier.
    ra, dec:
        Sky position in degrees.
    photo_z:
        Photometric redshift in [0.1, 2.0].
    half_light_radius:
        Effective (half-light) radius in arcseconds.
    ellipticity:
        1 - b/a in [0, 0.8).
    position_angle:
        Major-axis orientation in radians.
    sersic_index:
        Light-profile concentration (0.5 disk-like ... 4 bulge-like).
    magnitude_i:
        Apparent i-band magnitude of the galaxy.
    """

    galaxy_id: int
    ra: float
    dec: float
    photo_z: float
    half_light_radius: float
    ellipticity: float
    position_angle: float
    sersic_index: float
    magnitude_i: float

    def __post_init__(self) -> None:
        if not PHOTO_Z_MIN <= self.photo_z <= PHOTO_Z_MAX:
            raise ValueError(f"photo_z {self.photo_z} outside [{PHOTO_Z_MIN}, {PHOTO_Z_MAX}]")
        if self.half_light_radius <= 0:
            raise ValueError("half_light_radius must be positive")
        if not 0.0 <= self.ellipticity < 0.9:
            raise ValueError("ellipticity must be in [0, 0.9)")

    @property
    def axis_ratio(self) -> float:
        """Minor-to-major axis ratio b/a."""
        return 1.0 - self.ellipticity


class CosmosCatalog:
    """Generate and hold a COSMOS-like galaxy catalogue.

    Parameters
    ----------
    n_galaxies:
        Number of catalogue rows to synthesise.
    seed:
        Seed for the catalogue's private random generator.
    """

    def __init__(self, n_galaxies: int = 10_000, seed: int = 0) -> None:
        if n_galaxies <= 0:
            raise ValueError("n_galaxies must be positive")
        self.rng = np.random.default_rng(seed)
        self.galaxies: list[Galaxy] = [
            self._sample_galaxy(i) for i in range(n_galaxies)
        ]

    def _sample_photo_z(self) -> float:
        """Photo-z from a gamma-like n(z) peaking near z ~ 0.7."""
        while True:
            z = self.rng.gamma(shape=2.2, scale=0.40)
            if PHOTO_Z_MIN <= z <= PHOTO_Z_MAX:
                return float(z)

    def _sample_galaxy(self, galaxy_id: int) -> Galaxy:
        rng = self.rng
        z = self._sample_photo_z()
        # Apparent size shrinks with redshift (angular-diameter behaviour).
        radius = float(
            np.clip(rng.lognormal(mean=np.log(0.45 / (0.5 + z)), sigma=0.4), 0.08, 3.0)
        )
        # Apparent magnitude fainter at higher z with population scatter.
        mag_i = float(np.clip(21.0 + 2.2 * np.log1p(z) + rng.normal(0.0, 1.0), 18.0, 25.5))
        return Galaxy(
            galaxy_id=galaxy_id,
            ra=float(rng.uniform(COSMOS_FOOTPRINT["ra_min"], COSMOS_FOOTPRINT["ra_max"])),
            dec=float(rng.uniform(COSMOS_FOOTPRINT["dec_min"], COSMOS_FOOTPRINT["dec_max"])),
            photo_z=z,
            half_light_radius=radius,
            ellipticity=float(np.clip(rng.beta(2.0, 4.0), 0.0, 0.8)),
            position_angle=float(rng.uniform(0.0, np.pi)),
            sersic_index=float(np.clip(rng.lognormal(np.log(1.5), 0.5), 0.5, 4.0)),
            magnitude_i=mag_i,
        )

    def __len__(self) -> int:
        return len(self.galaxies)

    def __getitem__(self, index: int) -> Galaxy:
        return self.galaxies[index]

    def photo_zs(self) -> np.ndarray:
        """All redshifts as an array (for Fig. 3-style histograms)."""
        return np.array([g.photo_z for g in self.galaxies])

    def positions(self) -> np.ndarray:
        """(N, 2) array of RA/Dec (for Fig. 3-style sky maps)."""
        return np.array([[g.ra, g.dec] for g in self.galaxies])
