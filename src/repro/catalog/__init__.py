"""COSMOS-like galaxy catalogue and host selection."""

from .cosmos import COSMOS_FOOTPRINT, CosmosCatalog, Galaxy
from .hosts import HostSelector, SupernovaPlacement

__all__ = [
    "CosmosCatalog",
    "Galaxy",
    "COSMOS_FOOTPRINT",
    "HostSelector",
    "SupernovaPlacement",
]
