"""Host-galaxy selection and supernova placement.

The paper places each simulated supernova at a position "randomly
selected from an ellipsoidal region fitted to the host galaxy" (Section 3,
Fig. 4).  We reproduce that: the supernova offset is drawn uniformly from
the host's projected light ellipse (scaled to a configurable number of
half-light radii), rotated to the host's position angle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cosmos import CosmosCatalog, Galaxy

__all__ = ["HostSelector", "SupernovaPlacement"]


@dataclass(frozen=True)
class SupernovaPlacement:
    """A supernova's location relative to (and within) its host.

    Attributes
    ----------
    host:
        The catalogue galaxy hosting the supernova.
    offset_x, offset_y:
        Projected offset from the host centre in arcseconds (x = +RA
        direction, y = +Dec).
    """

    host: Galaxy
    offset_x: float
    offset_y: float

    @property
    def offset_radius(self) -> float:
        """Angular separation from the host centre in arcseconds."""
        return float(np.hypot(self.offset_x, self.offset_y))

    def normalized_offset(self) -> tuple[float, float]:
        """Offset in units of the host half-light radius (Fig. 4 right)."""
        r = self.host.half_light_radius
        return self.offset_x / r, self.offset_y / r


class HostSelector:
    """Pick hosts from a catalogue and place supernovae inside them.

    Parameters
    ----------
    catalog:
        Source galaxy catalogue.
    max_radius_fraction:
        Size of the placement ellipse in units of the host's half-light
        radius.  The paper's Fig. 4 shows SNe concentrated within roughly
        two effective radii.
    """

    def __init__(self, catalog: CosmosCatalog, max_radius_fraction: float = 2.0) -> None:
        if max_radius_fraction <= 0:
            raise ValueError("max_radius_fraction must be positive")
        if len(catalog) == 0:
            raise ValueError("catalog is empty")
        self.catalog = catalog
        self.max_radius_fraction = max_radius_fraction

    def select_host(self, rng: np.random.Generator) -> Galaxy:
        """Draw a host uniformly from the catalogue."""
        return self.catalog[int(rng.integers(len(self.catalog)))]

    def place_supernova(self, host: Galaxy, rng: np.random.Generator) -> SupernovaPlacement:
        """Sample a supernova position uniformly inside the host ellipse.

        A point is drawn uniformly on the unit disk (sqrt-radius trick),
        squeezed by the host axis ratio and rotated by its position angle.
        """
        radius = self.max_radius_fraction * host.half_light_radius * np.sqrt(rng.random())
        angle = rng.uniform(0.0, 2.0 * np.pi)
        # Unrotated ellipse frame: x along the major axis.
        x_ell = radius * np.cos(angle)
        y_ell = radius * np.sin(angle) * host.axis_ratio
        cos_pa, sin_pa = np.cos(host.position_angle), np.sin(host.position_angle)
        return SupernovaPlacement(
            host=host,
            offset_x=float(x_ell * cos_pa - y_ell * sin_pa),
            offset_y=float(x_ell * sin_pa + y_ell * cos_pa),
        )

    def sample(self, rng: np.random.Generator) -> SupernovaPlacement:
        """Select a host and place a supernova in one call."""
        return self.place_supernova(self.select_host(rng), rng)
