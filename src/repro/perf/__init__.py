"""Performance instrumentation: scoped timers, op counters, JSON reports.

Off by default and near-free while off; see
:mod:`repro.perf.instrument` for the contract.  The kernels
(:mod:`repro.nn.ops`), the training loop (:mod:`repro.core.training`)
and the serving engine (:mod:`repro.serve.engine`) are pre-instrumented
with the region names reported by ``benchmarks/bench_throughput.py``.
"""

from .instrument import (
    collecting,
    count,
    disable,
    enable,
    enabled,
    iter_timers,
    metrics_source,
    report,
    reset,
    timed,
    timed_fn,
    write_report,
)

__all__ = [
    "collecting",
    "count",
    "disable",
    "enable",
    "enabled",
    "iter_timers",
    "metrics_source",
    "report",
    "reset",
    "timed",
    "timed_fn",
    "write_report",
]
