"""Scoped timers and operation counters for the hot paths.

The subsystem is **off by default** and costs almost nothing while off:
``timed`` hands back a shared no-op context manager and ``count`` is a
single boolean check.  Enabling it (globally via :func:`enable` or
scoped via ``collecting()``) turns every instrumented region into an
entry of a process-wide registry — wall-clock total, call count, and
whatever unit counters the region reports (samples, batches, GEMM
calls) — which :func:`report` returns as a plain dict and
:func:`write_report` emits as JSON for the ``BENCH_*`` trajectory.

Typical usage::

    from repro import perf

    with perf.collecting():
        engine.classify_arrays(pairs, mjd)
    perf.write_report("perf.json")

Instrumenting a region::

    with perf.timed("serve.repair"):
        ...                       # no-op unless collection is enabled
    perf.count("serve.samples", n)

Threading: counters and timers update under a lock only when enabled,
so instrumented library code stays safe to call from the serving thread
pool.  Timings of concurrent scopes add up (they measure occupancy, not
wall clock).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Iterator

__all__ = [
    "enable",
    "disable",
    "enabled",
    "collecting",
    "timed",
    "count",
    "reset",
    "report",
    "write_report",
]

_LOCK = threading.Lock()
_ENABLED: bool = False

#: name -> [calls, total_seconds]
_TIMERS: dict[str, list[float]] = {}
#: name -> running total
_COUNTERS: dict[str, float] = {}


def enable() -> None:
    """Turn collection on globally (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn collection off globally; recorded data is kept until :func:`reset`."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether instrumented regions currently record anything."""
    return _ENABLED


def reset() -> None:
    """Drop all recorded timers and counters."""
    with _LOCK:
        _TIMERS.clear()
        _COUNTERS.clear()


class _NullScope:
    """The do-nothing scope handed out while collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


class _TimedScope:
    """One live timing region; records on exit."""

    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedScope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        with _LOCK:
            entry = _TIMERS.setdefault(self.name, [0, 0.0])
            entry[0] += 1
            entry[1] += elapsed


def timed(name: str) -> _TimedScope | _NullScope:
    """Context manager timing a named region (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_SCOPE
    return _TimedScope(name)


def timed_fn(name: str | None = None) -> Callable:
    """Decorator form of :func:`timed`; defaults to the function's name."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        def wrapper(*args: object, **kwargs: object) -> object:
            if not _ENABLED:
                return fn(*args, **kwargs)
            with _TimedScope(label):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def count(name: str, n: float = 1) -> None:
    """Add ``n`` to a named counter (no-op while disabled)."""
    if not _ENABLED:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + n


class collecting:
    """Context manager enabling collection for the duration of a block.

    Restores the previous enabled state on exit, so nesting and use
    around code that itself toggles the flag are safe.
    """

    def __enter__(self) -> "collecting":
        self._previous = _ENABLED
        enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ENABLED
        _ENABLED = self._previous


def report() -> dict:
    """Snapshot of everything recorded so far.

    Returns ``{"timers": {name: {"calls", "total_s", "mean_s"}},
    "counters": {name: total}}``; rates between a timer and a matching
    counter are the consumer's business (see ``bench_throughput.py``).
    """
    with _LOCK:
        timers = {
            name: {
                "calls": int(calls),
                "total_s": total,
                "mean_s": total / calls if calls else 0.0,
            }
            for name, (calls, total) in sorted(_TIMERS.items())
        }
        counters = {name: _COUNTERS[name] for name in sorted(_COUNTERS)}
    return {"timers": timers, "counters": counters}


def write_report(path: str | os.PathLike) -> dict:
    """Write :func:`report` as indented JSON (atomically); returns it."""
    data = report()
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return data


def metrics_source() -> dict:
    """:func:`report`, exposed under the metrics-source contract.

    A telemetry session (:func:`repro.obs.start`) registers this with
    its :class:`~repro.obs.metrics.MetricsRegistry` so one ``repro
    metrics`` report covers the perf timers next to the obs counters and
    histograms; the Prometheus exposition renders the timers as
    ``perf_timer_seconds_total`` / ``perf_timer_calls_total`` series.
    """
    return report()


def iter_timers() -> Iterator[tuple[str, int, float]]:
    """Yield ``(name, calls, total_seconds)`` for every recorded timer."""
    with _LOCK:
        snapshot = [(name, int(c), t) for name, (c, t) in _TIMERS.items()]
    yield from snapshot
