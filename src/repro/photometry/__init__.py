"""Photometric algebra: bands, magnitudes, flux conversions and
classical photometry on difference images."""

from .aperture import PhotometryResult, aperture_photometry, psf_photometry
from .bands import GRIZY, Band, band_by_name
from .extinction import apply_extinction_to_flux, band_extinction, ccm_extinction
from .magnitudes import (
    ZERO_POINT,
    flux_to_mag,
    inverse_signed_log10,
    mag_error_from_flux,
    mag_to_flux,
    signed_log10,
)

__all__ = [
    "PhotometryResult",
    "aperture_photometry",
    "psf_photometry",
    "ccm_extinction",
    "band_extinction",
    "apply_extinction_to_flux",
    "Band",
    "GRIZY",
    "band_by_name",
    "ZERO_POINT",
    "flux_to_mag",
    "mag_to_flux",
    "signed_log10",
    "inverse_signed_log10",
    "mag_error_from_flux",
]
