"""Galactic (Milky Way) dust extinction.

Light from every extragalactic source is dimmed by foreground dust.  The
standard parametrisation follows Cardelli, Clayton & Mathis (1989): the
extinction at wavelength lambda is

    A(lambda) = E(B-V) * R_V * (a(x) + b(x) / R_V),   x = 1/lambda [um^-1]

with R_V ~ 3.1 for the diffuse interstellar medium.  We implement the
optical/NIR branch (0.3-3.3 um^-1) — the range the g..y bands span —
with a smooth power-law continuation into the UV, sufficient for
redshifted effective wavelengths.

The COSMOS field is chosen for its very low dust column
(E(B-V) ~ 0.02), so extinction is a small correction there; the module
makes the simulator honest for arbitrary fields.
"""

from __future__ import annotations

import numpy as np

from .bands import Band

__all__ = ["ccm_extinction", "band_extinction", "apply_extinction_to_flux"]

R_V_DEFAULT = 3.1
COSMOS_EBV = 0.02


def _ccm_optical(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CCM89 optical/NIR coefficients for x in [1.1, 3.3] um^-1."""
    y = x - 1.82
    a = (
        1.0
        + 0.17699 * y
        - 0.50447 * y**2
        - 0.02427 * y**3
        + 0.72085 * y**4
        + 0.01979 * y**5
        - 0.77530 * y**6
        + 0.32999 * y**7
    )
    b = (
        1.41338 * y
        + 2.28305 * y**2
        + 1.07233 * y**3
        - 5.38434 * y**4
        - 0.62251 * y**5
        + 5.30260 * y**6
        - 2.09002 * y**7
    )
    return a, b


def _ccm_infrared(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CCM89 infrared coefficients for x in [0.3, 1.1] um^-1."""
    a = 0.574 * x**1.61
    b = -0.527 * x**1.61
    return a, b


def ccm_extinction(
    wavelength: float | np.ndarray, ebv: float, r_v: float = R_V_DEFAULT
) -> float | np.ndarray:
    """A(lambda) in magnitudes for a dust column E(B-V).

    Parameters
    ----------
    wavelength:
        Wavelength(s) in Angstroms (valid ~3000-33000 A; bluer values are
        clamped to the x = 3.3 um^-1 edge).
    ebv:
        Colour excess E(B-V) >= 0.
    r_v:
        Total-to-selective extinction ratio.
    """
    if ebv < 0:
        raise ValueError("E(B-V) must be non-negative")
    if r_v <= 0:
        raise ValueError("R_V must be positive")
    wl = np.asarray(wavelength, dtype=float)
    if np.any(wl <= 0):
        raise ValueError("wavelength must be positive")
    x = np.atleast_1d(np.clip(1e4 / wl, 0.3, 3.3))  # inverse microns, clamped
    a = np.empty_like(x)
    b = np.empty_like(x)
    optical = x >= 1.1
    a[optical], b[optical] = _ccm_optical(x[optical])
    a[~optical], b[~optical] = _ccm_infrared(x[~optical])
    extinction = ebv * r_v * (a + b / r_v)
    return extinction.reshape(wl.shape) if np.ndim(wavelength) else float(extinction[0])


def band_extinction(band: Band, ebv: float, r_v: float = R_V_DEFAULT) -> float:
    """A(band) at the band's effective wavelength."""
    return float(ccm_extinction(band.effective_wavelength, ebv, r_v))


def apply_extinction_to_flux(
    flux: float | np.ndarray, band: Band, ebv: float, r_v: float = R_V_DEFAULT
) -> float | np.ndarray:
    """Dim flux by the band's extinction: ``flux * 10^(-0.4 A)``."""
    factor = 10.0 ** (-0.4 * band_extinction(band, ebv, r_v))
    out = np.asarray(flux, dtype=float) * factor
    return out if np.ndim(flux) else float(out)
