"""Flux <-> magnitude algebra.

The paper works with stellar magnitudes on the zero-point-27 system used
by HSC difference imaging:

    mag = -2.5 log10(flux) + 27.0

and preprocesses difference-image pixels with the signed logarithm

    y = sgn(x) log10(|x| + 1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ZERO_POINT",
    "flux_to_mag",
    "mag_to_flux",
    "signed_log10",
    "inverse_signed_log10",
    "mag_error_from_flux",
]

ZERO_POINT: float = 27.0


def flux_to_mag(flux: float | np.ndarray, zero_point: float = ZERO_POINT) -> float | np.ndarray:
    """Convert flux (detector counts) to magnitude.

    Non-positive fluxes have no magnitude; they raise, because silent NaNs
    propagate into training labels.
    """
    flux_arr = np.asarray(flux, dtype=float)
    if np.any(flux_arr <= 0):
        raise ValueError("flux must be positive to have a magnitude")
    mag = -2.5 * np.log10(flux_arr) + zero_point
    return mag if np.ndim(flux) else float(mag)


def mag_to_flux(mag: float | np.ndarray, zero_point: float = ZERO_POINT) -> float | np.ndarray:
    """Convert magnitude to flux (inverse of :func:`flux_to_mag`)."""
    flux = 10.0 ** (-0.4 * (np.asarray(mag, dtype=float) - zero_point))
    return flux if np.ndim(mag) else float(flux)


def signed_log10(x: np.ndarray) -> np.ndarray:
    """The paper's dynamic-range compression ``sgn(x) log10(|x| + 1)``.

    Floating inputs keep their precision (float32 stays float32 on the
    serving hot path); anything else is computed in float64.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(float)
    return np.sign(x) * np.log10(np.abs(x) + 1.0)


def inverse_signed_log10(y: np.ndarray) -> np.ndarray:
    """Invert :func:`signed_log10`."""
    y = np.asarray(y, dtype=float)
    return np.sign(y) * (10.0 ** np.abs(y) - 1.0)


def mag_error_from_flux(flux: float, flux_error: float) -> float:
    """First-order magnitude uncertainty from a flux uncertainty.

    sigma_m = (2.5 / ln 10) * sigma_f / f.
    """
    if flux <= 0:
        raise ValueError("flux must be positive")
    if flux_error < 0:
        raise ValueError("flux error must be non-negative")
    return float(2.5 / np.log(10.0) * flux_error / flux)
