"""Broad-band filter definitions.

The survey of the paper observes in the five Hyper Suprime-Cam broad
bands g, r, i, z, y.  A :class:`Band` carries the effective wavelength
(used for the light-curve colour law and redshifting) and nominal sky
brightness / zero-point information used by the imaging simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Band", "GRIZY", "band_by_name"]


@dataclass(frozen=True)
class Band:
    """One broad-band filter.

    Attributes
    ----------
    name:
        Single-letter filter name ('g', 'r', 'i', 'z', 'y').
    effective_wavelength:
        Pivot wavelength in Angstroms.
    sky_mag_arcsec2:
        Typical dark-sky surface brightness in mag / arcsec^2, used by the
        noise model.
    index:
        Stable ordinal used to order features (g=0 ... y=4).
    """

    name: str
    effective_wavelength: float
    sky_mag_arcsec2: float
    index: int

    def __post_init__(self) -> None:
        if self.effective_wavelength <= 0:
            raise ValueError("effective wavelength must be positive")

    def __str__(self) -> str:
        return self.name


# HSC-like pivot wavelengths (Angstrom) and Mauna Kea sky brightnesses.
GRIZY: tuple[Band, ...] = (
    Band("g", 4754.0, 22.0, 0),
    Band("r", 6175.0, 21.2, 1),
    Band("i", 7711.0, 20.5, 2),
    Band("z", 8898.0, 19.6, 3),
    Band("y", 9762.0, 18.6, 4),
)

_BY_NAME = {band.name: band for band in GRIZY}


def band_by_name(name: str) -> Band:
    """Look up one of the five survey bands by letter."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown band {name!r}; expected one of {sorted(_BY_NAME)}") from None
