"""Classical photometry on difference images.

The paper's motivation is to *replace* "precise and complex flux
measurements" with a CNN.  To make that comparison concrete the library
also implements the classical measurements themselves:

* **aperture photometry** — sum pixels in a circular aperture, with an
  annulus-based local background estimate;
* **PSF photometry** — weighted least-squares fit of the known PSF shape,
  the statistically optimal estimator for isolated point sources.

Both operate on PSF-matched difference images and serve as the
non-learning baseline for the Fig. 8 flux-estimation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PhotometryResult", "aperture_photometry", "psf_photometry"]


@dataclass(frozen=True)
class PhotometryResult:
    """A flux measurement with its 1-sigma uncertainty."""

    flux: float
    flux_error: float

    @property
    def snr(self) -> float:
        """Detection signal-to-noise ratio."""
        return self.flux / self.flux_error if self.flux_error > 0 else 0.0


def _radial_masks(
    shape: tuple[int, int], center: tuple[float, float]
) -> np.ndarray:
    rows = np.arange(shape[0])[:, None] - center[0]
    cols = np.arange(shape[1])[None, :] - center[1]
    return np.sqrt(rows**2 + cols**2)


def aperture_photometry(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    sky_annulus: tuple[float, float] | None = None,
    pixel_noise: float | None = None,
) -> PhotometryResult:
    """Sum the flux inside a circular aperture.

    Parameters
    ----------
    image:
        Sky-subtracted (difference) image.
    center:
        (row, col) aperture centre.
    radius:
        Aperture radius in pixels.
    sky_annulus:
        Optional (inner, outer) radii of a residual-background annulus
        whose median is subtracted per aperture pixel.
    pixel_noise:
        Per-pixel noise sigma; when given, the flux error is
        ``sigma * sqrt(n_pixels)``, otherwise it is estimated from the
        annulus scatter (which then must be provided).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    distance = _radial_masks(image.shape, center)
    aperture = distance <= radius
    if not np.any(aperture):
        raise ValueError("aperture contains no pixels")

    background = 0.0
    annulus_std = None
    if sky_annulus is not None:
        inner, outer = sky_annulus
        if not 0 < inner < outer:
            raise ValueError("sky_annulus must be (inner, outer) with 0 < inner < outer")
        annulus = (distance >= inner) & (distance <= outer)
        if not np.any(annulus):
            raise ValueError("sky annulus contains no pixels")
        background = float(np.median(image[annulus]))
        annulus_std = float(np.std(image[annulus]))

    n_pixels = int(aperture.sum())
    flux = float(image[aperture].sum() - background * n_pixels)
    if pixel_noise is not None:
        error = float(pixel_noise * np.sqrt(n_pixels))
    elif annulus_std is not None:
        error = float(annulus_std * np.sqrt(n_pixels))
    else:
        raise ValueError("provide pixel_noise or sky_annulus to estimate the error")
    return PhotometryResult(flux=flux, flux_error=error)


def psf_photometry(
    image: np.ndarray,
    psf_model: np.ndarray,
    pixel_noise: float,
) -> PhotometryResult:
    """Optimal (matched-filter) point-source flux fit.

    Solves ``min_A || image - A * psf ||^2 / sigma^2`` in closed form:
    ``A = sum(image * psf) / sum(psf^2)`` with variance
    ``sigma^2 / sum(psf^2)``.  ``psf_model`` must be the unit-flux PSF
    rendered at the source position on the same grid.
    """
    if image.shape != psf_model.shape:
        raise ValueError("image and psf_model must have the same shape")
    if pixel_noise <= 0:
        raise ValueError("pixel_noise must be positive")
    norm = float(np.sum(psf_model**2))
    if norm <= 0:
        raise ValueError("psf_model is identically zero")
    flux = float(np.sum(image * psf_model) / norm)
    error = float(pixel_noise / np.sqrt(norm))
    return PhotometryResult(flux=flux, flux_error=error)
