"""Dataset splitting.

The paper uses 80% / 10% / 10% train / validation / test splits, and
derives *single-epoch* sub-samples from each full sample: epoch ``k``
keeps one visit per band (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sample import SupernovaDataset

__all__ = ["DatasetSplits", "train_val_test_split"]


def _allocate_counts(m: int, fractions: tuple[float, ...]) -> np.ndarray:
    """Integer allocation of ``m`` items over ``fractions``, summing to ``m``.

    Floor-plus-largest-remainder: each bucket gets the floor of its exact
    share and leftovers go to the largest fractional parts (stable
    order, so ties break deterministically).  Whenever ``m`` is at least
    the number of buckets, every bucket is then guaranteed non-empty by
    moving items from the fullest bucket — ``int(round(...))`` per bucket
    (the previous scheme) could hand an entire small stratum to
    train+val and leave the test slice empty.
    """
    exact = np.asarray(fractions, dtype=float) * m
    counts = np.floor(exact).astype(int)
    leftover = m - int(counts.sum())
    for idx in np.argsort(-(exact - counts), kind="stable")[:leftover]:
        counts[idx] += 1
    if m >= counts.size:
        while (counts == 0).any():
            counts[int(np.argmax(counts))] -= 1
            counts[int(np.argmin(counts))] += 1
    return counts


@dataclass(frozen=True)
class DatasetSplits:
    """The three standard partitions of a dataset."""

    train: SupernovaDataset
    val: SupernovaDataset
    test: SupernovaDataset

    def __repr__(self) -> str:
        return (
            f"DatasetSplits(train={len(self.train)}, val={len(self.val)}, "
            f"test={len(self.test)})"
        )


def train_val_test_split(
    dataset: SupernovaDataset,
    train_fraction: float = 0.8,
    val_fraction: float = 0.1,
    seed: int = 0,
    stratify: bool = True,
) -> DatasetSplits:
    """Split samples into train/val/test (paper: 80/10/10).

    With ``stratify=True`` the Ia / non-Ia ratio is preserved in each
    split, which keeps small validation sets usable.  Per-stratum sizes
    use floor-plus-remainder allocation, so every split is non-empty
    whenever a stratum has at least three samples; datasets that cannot
    yield three non-empty splits raise :class:`ValueError`.
    """
    if not 0 < train_fraction < 1 or not 0 < val_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fractions must leave room for test")

    rng = np.random.default_rng(seed)
    n = len(dataset)
    fractions = (train_fraction, val_fraction, 1.0 - train_fraction - val_fraction)

    def partition(indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        shuffled = rng.permutation(indices)
        n_train, n_val, _ = _allocate_counts(len(shuffled), fractions)
        return (
            shuffled[:n_train],
            shuffled[n_train : n_train + n_val],
            shuffled[n_train + n_val :],
        )

    if stratify:
        ia_idx = np.flatnonzero(dataset.labels == 1)
        non_idx = np.flatnonzero(dataset.labels == 0)
        tr_a, va_a, te_a = partition(ia_idx)
        tr_b, va_b, te_b = partition(non_idx)
        train_idx = rng.permutation(np.concatenate([tr_a, tr_b]))
        val_idx = rng.permutation(np.concatenate([va_a, va_b]))
        test_idx = rng.permutation(np.concatenate([te_a, te_b]))
    else:
        train_idx, val_idx, test_idx = partition(np.arange(n))

    if min(len(train_idx), len(val_idx), len(test_idx)) == 0:
        raise ValueError(f"dataset of {n} samples too small for the requested split")

    return DatasetSplits(
        train=dataset.select(train_idx),
        val=dataset.select(val_idx),
        test=dataset.select(test_idx),
    )
