"""Dataset persistence: compressed ``.npz`` archives.

Writes go through the resilience runtime's atomic write-then-rename with
an embedded SHA-256 checksum, so a crash mid-save never leaves a
half-written archive and silent corruption (truncation, bit rot, partial
transfer) is caught at load time as a
:class:`~repro.runtime.errors.CorruptArtifactError`.  Loads additionally
validate array shapes and dtypes up front so a malformed archive fails
with a one-line description instead of deep inside the model.
"""

from __future__ import annotations

import os

import numpy as np

from ..runtime import CorruptArtifactError, atomic_savez, verified_load
from .sample import N_BANDS, SupernovaDataset

__all__ = ["save_dataset", "load_dataset", "validate_dataset_arrays"]

_FIELDS = (
    "pairs",
    "visit_mjd",
    "visit_band",
    "true_flux",
    "labels",
    "sn_types",
    "redshifts",
    "host_mag",
    "sn_offset",
    "peak_mjd",
)


def save_dataset(dataset: SupernovaDataset, path: str | os.PathLike) -> None:
    """Write a dataset to a compressed, checksummed npz archive atomically."""
    arrays = {name: getattr(dataset, name) for name in _FIELDS}
    atomic_savez(path, arrays, compressed=True)


def validate_dataset_arrays(
    arrays: dict[str, np.ndarray],
    origin: str = "dataset",
    require_finite: bool = False,
) -> None:
    """Check shapes/dtypes of raw dataset arrays before construction.

    Verifies the pair-stamp layout ``(N, V, 2, S, S)`` with square
    stamps, a visit count that is a whole number of ``N_BANDS``-band
    epochs, matching per-visit and per-sample row counts, numeric dtypes,
    and binary labels.  Raises :class:`ValueError` with a descriptive,
    single-line message on the first violation.

    ``require_finite`` additionally rejects NaN/Inf entries in every
    floating-point field.  It is off by default because degraded cutouts
    (missing visits, masked pixels) are legitimate *serving* inputs — the
    strict mode of ``repro classify`` turns it on to refuse them.
    """
    pairs = arrays["pairs"]
    if pairs.ndim != 5 or pairs.shape[2] != 2:
        raise ValueError(
            f"{origin}: 'pairs' must be (N, V, 2, S, S) reference/observation "
            f"stamps, got shape {pairs.shape}"
        )
    if pairs.shape[3] != pairs.shape[4]:
        raise ValueError(
            f"{origin}: stamps must be square, got {pairs.shape[3]}x{pairs.shape[4]}"
        )
    n, n_visits = pairs.shape[:2]
    if n_visits % N_BANDS != 0:
        raise ValueError(
            f"{origin}: visit count {n_visits} is not a multiple of the "
            f"{N_BANDS}-band filter set (epochs x bands layout required)"
        )
    for name in ("visit_mjd", "visit_band", "true_flux"):
        if arrays[name].shape != (n, n_visits):
            raise ValueError(
                f"{origin}: '{name}' shape {arrays[name].shape} does not match "
                f"the (N={n}, V={n_visits}) visit grid"
            )
    for name in ("labels", "redshifts", "host_mag", "peak_mjd", "sn_types"):
        if arrays[name].shape != (n,):
            raise ValueError(
                f"{origin}: '{name}' shape {arrays[name].shape} does not match "
                f"N={n} samples"
            )
    if arrays["sn_offset"].shape != (n, 2):
        raise ValueError(
            f"{origin}: 'sn_offset' shape {arrays['sn_offset'].shape} must be (N, 2)"
        )
    for name in ("pairs", "visit_mjd", "true_flux", "redshifts", "host_mag", "peak_mjd"):
        if not np.issubdtype(arrays[name].dtype, np.floating):
            raise ValueError(
                f"{origin}: '{name}' must be floating point, got dtype {arrays[name].dtype}"
            )
    for name in ("visit_band", "labels"):
        if not np.issubdtype(arrays[name].dtype, np.integer):
            raise ValueError(
                f"{origin}: '{name}' must be integer, got dtype {arrays[name].dtype}"
            )
    labels = arrays["labels"]
    if labels.size and not np.isin(labels, (0, 1)).all():
        raise ValueError(f"{origin}: 'labels' must be binary (0=non-Ia, 1=Ia)")
    band = arrays["visit_band"]
    if band.size and (band.min() < 0 or band.max() >= N_BANDS):
        raise ValueError(
            f"{origin}: 'visit_band' entries must be in [0, {N_BANDS}), "
            f"got range [{band.min()}, {band.max()}]"
        )
    if require_finite:
        for name in ("pairs", "visit_mjd", "true_flux", "redshifts", "host_mag", "peak_mjd"):
            n_bad = int((~np.isfinite(arrays[name])).sum())
            if n_bad:
                raise ValueError(
                    f"{origin}: '{name}' holds {n_bad} non-finite entr"
                    f"{'y' if n_bad == 1 else 'ies'} (degraded input refused in "
                    "strict mode; drop --strict to serve it with masking)"
                )


def load_dataset(
    path: str | os.PathLike, validate: bool = True, require_finite: bool = False
) -> SupernovaDataset:
    """Load a dataset saved by :func:`save_dataset`.

    Raises :class:`~repro.runtime.errors.CorruptArtifactError` when the
    archive is truncated, unreadable, fails its checksum, or is missing
    fields; with ``validate`` (the default) array shapes and dtypes are
    checked with descriptive errors before the container is built.
    ``require_finite`` extends validation to reject NaN/Inf payloads (see
    :func:`validate_dataset_arrays`).
    """
    arrays = verified_load(path)
    missing = [name for name in _FIELDS if name not in arrays]
    if missing:
        raise CorruptArtifactError(path, f"missing fields {missing}")
    if validate or require_finite:
        validate_dataset_arrays(
            arrays, origin=os.fspath(path), require_finite=require_finite
        )
    return SupernovaDataset(**{name: arrays[name] for name in _FIELDS})
