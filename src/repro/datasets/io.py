"""Dataset persistence: compressed ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .sample import SupernovaDataset

__all__ = ["save_dataset", "load_dataset"]

_FIELDS = (
    "pairs",
    "visit_mjd",
    "visit_band",
    "true_flux",
    "labels",
    "sn_types",
    "redshifts",
    "host_mag",
    "sn_offset",
    "peak_mjd",
)


def save_dataset(dataset: SupernovaDataset, path: str | os.PathLike) -> None:
    """Write a dataset to a compressed npz archive."""
    np.savez_compressed(path, **{name: getattr(dataset, name) for name in _FIELDS})


def load_dataset(path: str | os.PathLike) -> SupernovaDataset:
    """Load a dataset saved by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        missing = [name for name in _FIELDS if name not in archive.files]
        if missing:
            raise KeyError(f"archive {path} is missing fields {missing}")
        return SupernovaDataset(**{name: archive[name] for name in _FIELDS})
