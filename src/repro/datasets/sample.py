"""Dataset containers.

A dataset sample (paper Section 3) is a tuple of

* 20 observation images — 5 bands x 4 epochs, supernova embedded,
* 5 reference images — no supernova, PSF-matched per visit,
* the true light curve (flux of the supernova at every visit), and
* bookkeeping: type label, redshift, host properties, visit dates.

The arrays use a struct-of-arrays layout.  Visits are ordered *epoch
major*: visit index ``k * n_bands + b`` is band ``b`` of epoch ``k``,
which makes the paper's single-epoch splits a simple reshape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..photometry import GRIZY

__all__ = ["SupernovaDataset", "N_BANDS"]

N_BANDS = len(GRIZY)


@dataclass
class SupernovaDataset:
    """Struct-of-arrays container for simulated supernova samples.

    Attributes
    ----------
    pairs:
        ``(N, V, 2, S, S)`` float32 — per visit, channel 0 is the
        PSF-matched reference and channel 1 the observation stamp.
    visit_mjd:
        ``(N, V)`` observation dates.
    visit_band:
        ``(N, V)`` integer band indices (0=g ... 4=y).
    true_flux:
        ``(N, V)`` noiseless supernova flux at each visit (ZP-27 counts).
    labels:
        ``(N,)`` — 1 for SNIa, 0 otherwise.
    sn_types:
        ``(N,)`` type codes as fixed-width strings ('Ia', 'IIP', ...).
    redshifts:
        ``(N,)`` host/SN redshift.
    host_mag:
        ``(N,)`` host apparent i magnitude.
    sn_offset:
        ``(N, 2)`` supernova offset from host centre in arcsec.
    peak_mjd:
        ``(N,)`` date of B maximum.
    """

    pairs: np.ndarray
    visit_mjd: np.ndarray
    visit_band: np.ndarray
    true_flux: np.ndarray
    labels: np.ndarray
    sn_types: np.ndarray
    redshifts: np.ndarray
    host_mag: np.ndarray
    sn_offset: np.ndarray
    peak_mjd: np.ndarray

    def __post_init__(self) -> None:
        n = self.pairs.shape[0]
        if self.pairs.ndim != 5 or self.pairs.shape[2] != 2:
            raise ValueError(f"pairs must be (N, V, 2, S, S), got {self.pairs.shape}")
        for name in ("visit_mjd", "visit_band", "true_flux"):
            arr = getattr(self, name)
            if arr.shape != self.pairs.shape[:2]:
                raise ValueError(f"{name} shape {arr.shape} != (N, V) {self.pairs.shape[:2]}")
        for name in ("labels", "sn_types", "redshifts", "host_mag", "peak_mjd"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} has {arr.shape[0]} rows, expected {n}")
        if self.n_visits % N_BANDS != 0:
            raise ValueError("visit count must be a multiple of the number of bands")

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.pairs.shape[0])

    @property
    def n_visits(self) -> int:
        return int(self.pairs.shape[1])

    @property
    def n_epochs(self) -> int:
        return self.n_visits // N_BANDS

    @property
    def stamp_size(self) -> int:
        return int(self.pairs.shape[-1])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def select(self, indices: np.ndarray) -> "SupernovaDataset":
        """Subset of samples (new container, shared memory where possible)."""
        idx = np.asarray(indices)
        return SupernovaDataset(
            pairs=self.pairs[idx],
            visit_mjd=self.visit_mjd[idx],
            visit_band=self.visit_band[idx],
            true_flux=self.true_flux[idx],
            labels=self.labels[idx],
            sn_types=self.sn_types[idx],
            redshifts=self.redshifts[idx],
            host_mag=self.host_mag[idx],
            sn_offset=self.sn_offset[idx],
            peak_mjd=self.peak_mjd[idx],
        )

    def epoch_slice(self, epoch: int) -> np.ndarray:
        """Visit indices of one epoch (one visit per band)."""
        if not 0 <= epoch < self.n_epochs:
            raise IndexError(f"epoch {epoch} out of range [0, {self.n_epochs})")
        return np.arange(epoch * N_BANDS, (epoch + 1) * N_BANDS)

    def flux_pairs(
        self, min_flux: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten to per-visit CNN training pairs.

        Returns ``(pairs, magnitudes, mask)`` where ``pairs`` is
        ``(N*V, 2, S, S)``, ``magnitudes`` the true supernova magnitude of
        each pair, and ``mask`` marks visits whose flux exceeds
        ``min_flux`` (fainter visits have no meaningful magnitude and are
        excluded from regression training, as in the paper's visible
        samples).
        """
        flat_pairs = self.pairs.reshape(-1, 2, self.stamp_size, self.stamp_size)
        flux = self.true_flux.reshape(-1)
        mask = flux > min_flux
        mags = np.full(flux.shape, np.nan)
        mags[mask] = -2.5 * np.log10(flux[mask]) + 27.0
        return flat_pairs, mags, mask

    def difference_images(self) -> np.ndarray:
        """Observation minus matched reference for every visit: (N, V, S, S)."""
        return self.pairs[:, :, 1] - self.pairs[:, :, 0]

    def summary(self) -> str:
        """Human-readable one-line description."""
        n_ia = int(self.labels.sum())
        return (
            f"SupernovaDataset(n={len(self)}, Ia={n_ia}, nonIa={len(self) - n_ia}, "
            f"epochs={self.n_epochs}, bands={N_BANDS}, stamp={self.stamp_size})"
        )
