"""Synthetic dataset construction (paper Section 3)."""

from .builder import BUILDER_VERSION, BuildConfig, DatasetBuilder
from .io import load_dataset, save_dataset, validate_dataset_arrays
from .sample import N_BANDS, SupernovaDataset
from .snpcc import SNPCCConfig, SNPCCDataset, SNPCCSample, generate_snpcc
from .splits import DatasetSplits, train_val_test_split

__all__ = [
    "BUILDER_VERSION",
    "BuildConfig",
    "DatasetBuilder",
    "SupernovaDataset",
    "N_BANDS",
    "DatasetSplits",
    "train_val_test_split",
    "save_dataset",
    "load_dataset",
    "validate_dataset_arrays",
    "SNPCCConfig",
    "SNPCCDataset",
    "SNPCCSample",
    "generate_snpcc",
]
