"""End-to-end dataset generation (paper Section 3).

Pipeline per sample:

1. select a host galaxy from the COSMOS-like catalogue and place the
   supernova inside its light ellipse;
2. draw the supernova model (type, stretch, colour, scatter) from the
   population priors; the redshift is the host photo-z;
3. generate the observation schedule (4 epochs x 5 bands, <= 2 bands per
   night) and pick a peak date inside it;
4. for every visit, render the observation stamp (host + supernova at the
   night's conditions) and a deep reference stamp, PSF-match the
   reference to the visit, and record the true flux.

The result is a :class:`~repro.datasets.sample.SupernovaDataset` with
equal numbers of SNIa and non-Ia samples by default (6,000 + 6,000 in the
paper; configurable here because the imaging is CPU-bound).
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..catalog import CosmosCatalog, HostSelector
from ..lightcurves import LightCurve, PopulationModel
from ..photometry import GRIZY
from ..runtime import (
    BuildAborted,
    BuildReport,
    QuarantineRecord,
    atomic_savez,
    pack_json,
    unpack_json,
    verified_load,
)
from ..survey import (
    ConditionsModel,
    ImagingConfig,
    NoiseModel,
    StampSimulator,
    SurveyScheduler,
    difference_images,
)
from .sample import N_BANDS, SupernovaDataset

__all__ = ["BuildConfig", "DatasetBuilder"]


@dataclass
class BuildConfig:
    """Knobs of the dataset generator.

    Defaults mirror the paper: 65x65 stamps, 4 epochs per band, 5 bands.
    ``n_ia`` / ``n_non_ia`` default small because stamp rendering is
    CPU-bound; the paper used 6,000 + 6,000.
    """

    n_ia: int = 300
    n_non_ia: int = 300
    epochs_per_band: int = 4
    start_mjd: float = 57000.0
    catalog_size: int = 5000
    seed: int = 0
    imaging: ImagingConfig = field(default_factory=ImagingConfig)
    noise: NoiseModel = field(default_factory=NoiseModel)
    conditions: ConditionsModel = field(default_factory=ConditionsModel)
    max_host_radius_fraction: float = 2.0
    render_images: bool = True

    def __post_init__(self) -> None:
        if self.n_ia < 0 or self.n_non_ia < 0 or self.n_ia + self.n_non_ia == 0:
            raise ValueError("need a positive number of samples")
        if self.epochs_per_band <= 0:
            raise ValueError("epochs_per_band must be positive")


_ARRAY_FIELDS = (
    "pairs",
    "visit_mjd",
    "visit_band",
    "true_flux",
    "labels",
    "sn_types",
    "redshifts",
    "host_mag",
    "sn_offset",
    "peak_mjd",
)


class DatasetBuilder:
    """Build synthetic supernova datasets.

    Builds are failure-isolated and resumable: an exception while
    rendering one sample (PSF, WCS, noise, ...) quarantines that attempt
    into :attr:`report` and resamples the slot instead of aborting the
    whole CPU-bound run, and with ``checkpoint_path`` set the partial
    build is snapshotted atomically every ``checkpoint_every`` samples so
    a killed build continues from where it stopped (bit-identical to an
    uninterrupted one).
    """

    def __init__(self, config: BuildConfig | None = None) -> None:
        self.config = config or BuildConfig()
        cfg = self.config
        self.catalog = CosmosCatalog(cfg.catalog_size, seed=cfg.seed)
        self.hosts = HostSelector(self.catalog, cfg.max_host_radius_fraction)
        self.population = PopulationModel()
        self.scheduler = SurveyScheduler(epochs_per_band=cfg.epochs_per_band)
        self.simulator = StampSimulator(cfg.imaging, cfg.noise, cfg.conditions)
        #: BuildReport of the most recent :meth:`build` call (or None).
        self.report: BuildReport | None = None

    def _fingerprint(self) -> dict:
        cfg = self.config
        return {
            "n_ia": cfg.n_ia,
            "n_non_ia": cfg.n_non_ia,
            "epochs_per_band": cfg.epochs_per_band,
            "seed": cfg.seed,
            "catalog_size": cfg.catalog_size,
            "start_mjd": cfg.start_mjd,
            "render_images": cfg.render_images,
            "stamp_size": cfg.imaging.stamp_size if cfg.render_images else 1,
        }

    def build(
        self,
        verbose: bool = False,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        max_sample_retries: int = 5,
        fault_hook: Callable[[int, int], None] | None = None,
    ) -> SupernovaDataset:
        """Generate the full dataset.

        Parameters
        ----------
        checkpoint_path / checkpoint_every:
            When both are set, the partial build (arrays, generator
            state, quarantine report) is written atomically every
            ``checkpoint_every`` completed samples.
        resume:
            Continue from ``checkpoint_path`` if it exists; the
            checkpoint must have been written by a builder with an
            identical configuration.
        max_sample_retries:
            How many times one sample slot may be resampled after
            failures before the build aborts with
            :class:`~repro.runtime.errors.BuildAborted`.
        fault_hook:
            Optional ``hook(sample_index, attempt)`` called before each
            build attempt; used by the fault-injection tests.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        n_total = cfg.n_ia + cfg.n_non_ia
        n_visits = cfg.epochs_per_band * N_BANDS
        # Light-curve-only datasets (render_images=False) keep 1x1 pair
        # placeholders: classifier experiments need fluxes, not stamps.
        size = cfg.imaging.stamp_size if cfg.render_images else 1

        arrays = {
            "pairs": np.zeros((n_total, n_visits, 2, size, size), dtype=np.float32),
            "visit_mjd": np.zeros((n_total, n_visits)),
            "visit_band": np.zeros((n_total, n_visits), dtype=np.int64),
            "true_flux": np.zeros((n_total, n_visits)),
            "labels": np.zeros(n_total, dtype=np.int64),
            "sn_types": np.empty(n_total, dtype="U4"),
            "redshifts": np.zeros(n_total),
            "host_mag": np.zeros(n_total),
            "sn_offset": np.zeros((n_total, 2)),
            "peak_mjd": np.zeros(n_total),
        }
        arrays["sn_types"].fill("")

        class_flags = np.array([True] * cfg.n_ia + [False] * cfg.n_non_ia)
        rng.shuffle(class_flags)
        report = BuildReport(n_target=n_total)
        start_index = 0

        if resume:
            if checkpoint_path is None:
                raise ValueError("resume=True requires a checkpoint_path")
            if os.path.exists(checkpoint_path):
                start_index, class_flags, report = self._load_build_checkpoint(
                    checkpoint_path, arrays, rng
                )
                report.resumed += 1
                if verbose:
                    print(f"  resumed build at sample {start_index}/{n_total}")

        for i in range(start_index, n_total):
            is_ia = bool(class_flags[i])
            attempt = 0
            while True:
                pre_state = copy.deepcopy(rng.bit_generator.state)
                try:
                    if fault_hook is not None:
                        fault_hook(i, attempt)
                    self._build_one(
                        i,
                        is_ia,
                        rng,
                        arrays["pairs"],
                        arrays["visit_mjd"],
                        arrays["visit_band"],
                        arrays["true_flux"],
                        arrays["labels"],
                        arrays["sn_types"],
                        arrays["redshifts"],
                        arrays["host_mag"],
                        arrays["sn_offset"],
                        arrays["peak_mjd"],
                    )
                    break
                except Exception as exc:
                    report.record(
                        QuarantineRecord.from_exception(i, attempt, is_ia, exc, pre_state)
                    )
                    self._clear_slot(i, arrays)
                    attempt += 1
                    if attempt > max_sample_retries:
                        self.report = report
                        raise BuildAborted(
                            f"sample slot {i} failed {attempt} consecutive attempts "
                            f"(last: {type(exc).__name__}: {exc})",
                            report=report,
                        ) from exc
                    if verbose:
                        print(
                            f"  quarantined sample {i} attempt {attempt - 1} "
                            f"({type(exc).__name__}); resampling"
                        )
            report.n_built = i + 1
            if (
                checkpoint_path is not None
                and checkpoint_every > 0
                and (i + 1) % checkpoint_every == 0
            ):
                self._save_build_checkpoint(checkpoint_path, arrays, class_flags, rng, i + 1, report)
            if verbose and (i + 1) % 50 == 0:
                print(f"  built {i + 1}/{n_total} samples")

        self.report = report
        return SupernovaDataset(**arrays)

    # ------------------------------------------------------------------
    # Fault isolation & checkpoint plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _clear_slot(i: int, arrays: dict[str, np.ndarray]) -> None:
        """Zero every array row of one sample slot after a failed attempt."""
        for name in _ARRAY_FIELDS:
            arrays[name][i] = "" if name == "sn_types" else 0

    def _save_build_checkpoint(
        self,
        path: str | os.PathLike,
        arrays: dict[str, np.ndarray],
        class_flags: np.ndarray,
        rng: np.random.Generator,
        next_index: int,
        report: BuildReport,
    ) -> None:
        payload = dict(arrays)
        payload["class_flags"] = class_flags
        payload["meta"] = pack_json(
            {
                "next_index": next_index,
                "rng_state": rng.bit_generator.state,
                "report": report.to_dict(),
                "fingerprint": self._fingerprint(),
            }
        )
        atomic_savez(path, payload)

    def _load_build_checkpoint(
        self,
        path: str | os.PathLike,
        arrays: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> tuple[int, np.ndarray, BuildReport]:
        data = verified_load(path)
        meta = unpack_json(data["meta"])
        if meta["fingerprint"] != self._fingerprint():
            raise ValueError(
                f"build checkpoint {os.fspath(path)} was written with an incompatible "
                f"configuration: {meta['fingerprint']} != {self._fingerprint()}"
            )
        for name in _ARRAY_FIELDS:
            arrays[name][...] = data[name]
        rng.bit_generator.state = meta["rng_state"]
        return int(meta["next_index"]), data["class_flags"].astype(bool), BuildReport.from_dict(
            meta["report"]
        )

    def _build_one(
        self,
        i: int,
        is_ia: bool,
        rng: np.random.Generator,
        pairs: np.ndarray,
        visit_mjd: np.ndarray,
        visit_band: np.ndarray,
        true_flux: np.ndarray,
        labels: np.ndarray,
        sn_types: np.ndarray,
        redshifts: np.ndarray,
        host_mag: np.ndarray,
        sn_offset: np.ndarray,
        peak_mjd: np.ndarray,
    ) -> None:
        cfg = self.config
        placement = self.hosts.sample(rng)
        model = self.population.sample(is_ia, rng)
        plan = self.scheduler.generate(cfg.start_mjd, rng)
        peak = self.scheduler.sample_peak_mjd(plan, rng)
        curve = LightCurve(model, redshift=placement.host.photo_z, peak_mjd=peak)

        labels[i] = int(is_ia)
        sn_types[i] = curve.sn_type.value
        redshifts[i] = curve.redshift
        host_mag[i] = placement.host.magnitude_i
        sn_offset[i] = (placement.offset_x, placement.offset_y)
        peak_mjd[i] = peak

        # One deep reference per band, PSF-matched per visit below.
        references = (
            {
                band.index: self.simulator.reference(placement, band, rng)
                for band in GRIZY
            }
            if cfg.render_images
            else {}
        )

        for k, group in enumerate(plan.epoch_groups()[: cfg.epochs_per_band]):
            for b, visit in enumerate(group):
                v = k * N_BANDS + b
                band = visit.band
                night = self.simulator.conditions.sample(visit.mjd, rng)
                flux = float(curve.flux(band, visit.mjd))
                if not cfg.render_images:
                    visit_mjd[i, v] = visit.mjd
                    visit_band[i, v] = band.index
                    true_flux[i, v] = flux
                    continue
                exposure = self.simulator.observe(placement, band, flux, night, rng)
                reference = references[band.index]
                matched = difference_images(
                    reference.pixels.astype(np.float64),
                    exposure.pixels.astype(np.float64),
                    ref_fwhm=reference.conditions.seeing_fwhm,
                    obs_fwhm=night.seeing_fwhm,
                    pixel_scale=cfg.imaging.pixel_scale,
                    method="model",
                )
                # Store (matched reference, observation): their difference
                # is exactly the PSF-matched difference image.
                observation = exposure.pixels.astype(np.float32)
                matched_reference = (observation - matched.difference).astype(np.float32)
                pairs[i, v, 0] = matched_reference
                pairs[i, v, 1] = observation
                visit_mjd[i, v] = visit.mjd
                visit_band[i, v] = band.index
                true_flux[i, v] = flux
