"""End-to-end dataset generation (paper Section 3).

Pipeline per sample:

1. select a host galaxy from the COSMOS-like catalogue and place the
   supernova inside its light ellipse;
2. draw the supernova model (type, stretch, colour, scatter) from the
   population priors; the redshift is the host photo-z;
3. generate the observation schedule (4 epochs x 5 bands, <= 2 bands per
   night) and pick a peak date inside it;
4. for every visit, render the observation stamp (host + supernova at the
   night's conditions) and a deep reference stamp, PSF-match the
   reference to the visit, and record the true flux.

The result is a :class:`~repro.datasets.sample.SupernovaDataset` with
equal numbers of SNIa and non-Ia samples by default (6,000 + 6,000 in the
paper; configurable here because the imaging is CPU-bound).

Seeding contract (builder version 2)
------------------------------------
Every sample slot draws from its own child generator derived from the
config seed via ``np.random.SeedSequence``: attempt ``a`` of slot ``s``
uses the child with spawn key ``(s, a)`` (the spawn-tree grandchild
``SeedSequence(seed).spawn(...)`` would produce), and the Ia/non-Ia slot
assignment is shuffled by a dedicated child stream.  Samples are
therefore *order-independent*: rendering slots concurrently across a
worker pool (``BuildConfig.workers > 1``), serially, or resuming from a
partial checkpoint all produce bit-identical datasets.  This replaced
the version-1 single shared RNG stream, so version-2 datasets differ
sample-by-sample from version-1 datasets built with the same seed; the
builder fingerprint carries the version so stale checkpoints are
rejected instead of silently mixed.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import obs
from ..catalog import CosmosCatalog, HostSelector
from ..lightcurves import LightCurve, PopulationModel
from ..photometry import GRIZY
from ..runtime import (
    BuildAborted,
    BuildReport,
    QuarantineRecord,
    atomic_savez,
    pack_json,
    unpack_json,
    verified_load,
)
from ..survey import (
    ConditionsModel,
    ImagingConfig,
    NoiseModel,
    StampSimulator,
    SurveyScheduler,
    difference_images,
)
from .sample import N_BANDS, SupernovaDataset

__all__ = ["BUILDER_VERSION", "BuildConfig", "DatasetBuilder"]

#: Version of the dataset-RNG contract baked into the builder fingerprint.
#: Bumped to 2 when per-sample ``SeedSequence`` children replaced the
#: single shared generator stream (parallel builds).
BUILDER_VERSION = 2

#: Spawn-key domain of the class-assignment shuffle stream; a 1-element
#: key can never collide with the 2-element ``(slot, attempt)`` keys.
_FLAGS_SPAWN_KEY = 0x5EED


@dataclass
class BuildConfig:
    """Knobs of the dataset generator.

    Defaults mirror the paper: 65x65 stamps, 4 epochs per band, 5 bands.
    ``n_ia`` / ``n_non_ia`` default small because stamp rendering is
    CPU-bound; the paper used 6,000 + 6,000.

    ``workers`` selects how many processes render sample slots: ``1``
    (the default) keeps everything in-process, ``N > 1`` fans slots out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The
    resulting dataset is bit-identical either way, so ``workers`` is a
    throughput knob only and deliberately not part of the fingerprint.
    """

    n_ia: int = 300
    n_non_ia: int = 300
    epochs_per_band: int = 4
    start_mjd: float = 57000.0
    catalog_size: int = 5000
    seed: int = 0
    imaging: ImagingConfig = field(default_factory=ImagingConfig)
    noise: NoiseModel = field(default_factory=NoiseModel)
    conditions: ConditionsModel = field(default_factory=ConditionsModel)
    max_host_radius_fraction: float = 2.0
    render_images: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_ia < 0 or self.n_non_ia < 0 or self.n_ia + self.n_non_ia == 0:
            raise ValueError("need a positive number of samples")
        if self.epochs_per_band <= 0:
            raise ValueError("epochs_per_band must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


_ARRAY_FIELDS = (
    "pairs",
    "visit_mjd",
    "visit_band",
    "true_flux",
    "labels",
    "sn_types",
    "redshifts",
    "host_mag",
    "sn_offset",
    "peak_mjd",
)


@dataclass
class _SlotResult:
    """Outcome of rendering one sample slot (in-process or in a worker)."""

    slot: int
    data: dict[str, np.ndarray] | None
    records: list[QuarantineRecord]
    message: str = ""


# Per-worker-process builder, constructed once by the pool initializer so
# the catalogue / simulator setup cost is paid per worker, not per slot.
_WORKER_BUILDER: "DatasetBuilder | None" = None


def _init_worker(config: BuildConfig) -> None:
    global _WORKER_BUILDER
    _WORKER_BUILDER = DatasetBuilder(config)


def _render_slot_task(
    slot: int,
    is_ia: bool,
    max_retries: int,
    fault_hook: Callable[[int, int], None] | None,
) -> _SlotResult:
    assert _WORKER_BUILDER is not None, "worker pool not initialised"
    return _WORKER_BUILDER._render_slot(slot, is_ia, max_retries, fault_hook)


class DatasetBuilder:
    """Build synthetic supernova datasets.

    Builds are failure-isolated, resumable and parallelisable: an
    exception while rendering one sample (PSF, WCS, noise, ...)
    quarantines that attempt into :attr:`report` and redraws the slot
    from its next per-slot child seed instead of aborting the whole
    CPU-bound run; with ``checkpoint_path`` set the partial build is
    snapshotted atomically every ``checkpoint_every`` samples so a killed
    build continues from the recorded set of completed slots; and with
    ``BuildConfig.workers > 1`` slots are rendered concurrently across a
    process pool.  All execution modes produce bit-identical datasets
    because every ``(slot, attempt)`` owns an independent seed.
    """

    def __init__(self, config: BuildConfig | None = None) -> None:
        self.config = config or BuildConfig()
        cfg = self.config
        self.catalog = CosmosCatalog(cfg.catalog_size, seed=cfg.seed)
        self.hosts = HostSelector(self.catalog, cfg.max_host_radius_fraction)
        self.population = PopulationModel()
        self.scheduler = SurveyScheduler(epochs_per_band=cfg.epochs_per_band)
        self.simulator = StampSimulator(cfg.imaging, cfg.noise, cfg.conditions)
        #: BuildReport of the most recent :meth:`build` call (or None).
        self.report: BuildReport | None = None

    @staticmethod
    def _emit(
        event: str,
        message: str,
        verbose: bool,
        level: str = "info",
        **fields: object,
    ) -> None:
        """Report one build happening: structured event or stderr line.

        With a telemetry session active the record goes to the event
        log; otherwise ``verbose=True`` preserves the human-readable
        rendering on stderr (progress must never pollute stdout, which
        carries command output).
        """
        session = obs.active()
        if session is not None:
            session.emit(event, level=level, message=message, **fields)
        elif verbose:
            print(message, file=sys.stderr)

    def _fingerprint(self) -> dict:
        cfg = self.config
        return {
            "version": BUILDER_VERSION,
            "n_ia": cfg.n_ia,
            "n_non_ia": cfg.n_non_ia,
            "epochs_per_band": cfg.epochs_per_band,
            "seed": cfg.seed,
            "catalog_size": cfg.catalog_size,
            "start_mjd": cfg.start_mjd,
            "render_images": cfg.render_images,
            "stamp_size": cfg.imaging.stamp_size if cfg.render_images else 1,
        }

    # ------------------------------------------------------------------
    # Deterministic per-slot seeding
    # ------------------------------------------------------------------
    def _slot_seed(self, slot: int, attempt: int) -> np.random.SeedSequence:
        """Child seed of ``(slot, attempt)`` under the config seed.

        Equivalent to spawning ``SeedSequence(seed)`` per slot and then
        per attempt, but constructed statelessly from the spawn key so
        any process can derive it without coordination.
        """
        return np.random.SeedSequence(self.config.seed, spawn_key=(slot, attempt))

    def _class_flags(self) -> np.ndarray:
        """Deterministic Ia/non-Ia assignment of the sample slots."""
        cfg = self.config
        flags = np.array([True] * cfg.n_ia + [False] * cfg.n_non_ia)
        rng = np.random.default_rng(
            np.random.SeedSequence(cfg.seed, spawn_key=(_FLAGS_SPAWN_KEY,))
        )
        rng.shuffle(flags)
        return flags

    def _allocate(self, n_total: int) -> dict[str, np.ndarray]:
        cfg = self.config
        n_visits = cfg.epochs_per_band * N_BANDS
        # Light-curve-only datasets (render_images=False) keep 1x1 pair
        # placeholders: classifier experiments need fluxes, not stamps.
        size = cfg.imaging.stamp_size if cfg.render_images else 1
        arrays = {
            "pairs": np.zeros((n_total, n_visits, 2, size, size), dtype=np.float32),
            "visit_mjd": np.zeros((n_total, n_visits)),
            "visit_band": np.zeros((n_total, n_visits), dtype=np.int64),
            "true_flux": np.zeros((n_total, n_visits)),
            "labels": np.zeros(n_total, dtype=np.int64),
            "sn_types": np.empty(n_total, dtype="U4"),
            "redshifts": np.zeros(n_total),
            "host_mag": np.zeros(n_total),
            "sn_offset": np.zeros((n_total, 2)),
            "peak_mjd": np.zeros(n_total),
        }
        arrays["sn_types"].fill("")
        return arrays

    def build(
        self,
        verbose: bool = False,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        max_sample_retries: int = 5,
        fault_hook: Callable[[int, int], None] | None = None,
    ) -> SupernovaDataset:
        """Generate the full dataset.

        Parameters
        ----------
        checkpoint_path / checkpoint_every:
            When both are set, the partial build (arrays, completed-slot
            set, quarantine report) is written atomically every
            ``checkpoint_every`` completed samples.
        resume:
            Continue from ``checkpoint_path`` if it exists; the
            checkpoint must have been written by a builder with an
            identical configuration (``workers`` excluded — serial and
            parallel builds share checkpoints).
        max_sample_retries:
            How many times one sample slot may be redrawn after failures
            before the build aborts with
            :class:`~repro.runtime.errors.BuildAborted`.
        fault_hook:
            Optional ``hook(sample_index, attempt)`` called before each
            build attempt; used by the fault-injection tests.  With
            ``workers > 1`` the hook is pickled into each worker task, so
            it must be picklable and any internal state is per-slot.
        """
        cfg = self.config
        n_total = cfg.n_ia + cfg.n_non_ia
        arrays = self._allocate(n_total)
        class_flags = self._class_flags()
        completed = np.zeros(n_total, dtype=bool)
        report = BuildReport(n_target=n_total)

        if resume:
            if checkpoint_path is None:
                raise ValueError("resume=True requires a checkpoint_path")
            if os.path.exists(checkpoint_path):
                completed, report = self._load_build_checkpoint(checkpoint_path, arrays)
                report.resumed += 1
                self._emit(
                    "build.resume",
                    f"  resumed build with {int(completed.sum())}/{n_total} "
                    f"slots complete",
                    verbose,
                    n_completed=int(completed.sum()),
                    n_target=n_total,
                )

        self._emit(
            "build.start",
            f"  building {n_total} samples "
            f"({cfg.n_ia} Ia + {cfg.n_non_ia} non-Ia, workers={cfg.workers})",
            False,
            n_target=n_total,
            n_ia=cfg.n_ia,
            n_non_ia=cfg.n_non_ia,
            seed=cfg.seed,
            workers=cfg.workers,
            render_images=cfg.render_images,
        )
        session = obs.active()
        if session is not None:
            session.metrics.gauge("build.n_target").set(n_total)

        pending = [slot for slot in range(n_total) if not completed[slot]]
        build_slots = (
            self._build_serial if cfg.workers == 1 else self._build_parallel
        )
        build_slots(
            pending,
            class_flags,
            arrays,
            completed,
            report,
            max_sample_retries=max_sample_retries,
            fault_hook=fault_hook,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            verbose=verbose,
        )
        report.quarantined.sort(key=lambda rec: (rec.slot, rec.attempt))
        self.report = report
        self._emit(
            "build.end",
            f"  {report.summary()}",
            False,
            n_built=report.n_built,
            n_target=report.n_target,
            n_quarantined=report.n_quarantined,
            resumed=report.resumed,
        )
        return SupernovaDataset(**arrays)

    # ------------------------------------------------------------------
    # Execution strategies (bit-identical by construction)
    # ------------------------------------------------------------------
    def _build_serial(
        self,
        pending: list[int],
        class_flags: np.ndarray,
        arrays: dict[str, np.ndarray],
        completed: np.ndarray,
        report: BuildReport,
        *,
        max_sample_retries: int,
        fault_hook: Callable[[int, int], None] | None,
        checkpoint_path: str | os.PathLike | None,
        checkpoint_every: int,
        verbose: bool,
    ) -> None:
        for slot in pending:
            result = self._render_slot(
                slot, bool(class_flags[slot]), max_sample_retries, fault_hook
            )
            self._complete_slot(result, arrays, completed, report, verbose)
            self._maybe_checkpoint(
                checkpoint_path, checkpoint_every, arrays, class_flags, completed, report
            )
            self._progress(completed, verbose)

    def _build_parallel(
        self,
        pending: list[int],
        class_flags: np.ndarray,
        arrays: dict[str, np.ndarray],
        completed: np.ndarray,
        report: BuildReport,
        *,
        max_sample_retries: int,
        fault_hook: Callable[[int, int], None] | None,
        checkpoint_path: str | os.PathLike | None,
        checkpoint_every: int,
        verbose: bool,
    ) -> None:
        executor = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_worker,
            initargs=(self.config,),
        )
        try:
            futures = [
                executor.submit(
                    _render_slot_task,
                    slot,
                    bool(class_flags[slot]),
                    max_sample_retries,
                    fault_hook,
                )
                for slot in pending
            ]
            for future in as_completed(futures):
                result = future.result()
                self._complete_slot(result, arrays, completed, report, verbose)
                self._maybe_checkpoint(
                    checkpoint_path, checkpoint_every, arrays, class_flags, completed, report
                )
                self._progress(completed, verbose)
        finally:
            executor.shutdown(wait=True, cancel_futures=True)

    def _render_slot(
        self,
        slot: int,
        is_ia: bool,
        max_retries: int,
        fault_hook: Callable[[int, int], None] | None = None,
    ) -> _SlotResult:
        """Render one sample slot with its own deterministic seed chain.

        Each attempt ``a`` draws from the independent ``(slot, a)`` child
        generator, so retries never perturb other slots and the result is
        identical no matter which process renders it or in what order.
        """
        arrays = self._allocate(1)
        records: list[QuarantineRecord] = []
        attempt = 0
        while True:
            rng = np.random.default_rng(self._slot_seed(slot, attempt))
            try:
                if fault_hook is not None:
                    fault_hook(slot, attempt)
                self._build_one(0, is_ia, rng, *(arrays[name] for name in _ARRAY_FIELDS))
                return _SlotResult(
                    slot, {name: arrays[name][0] for name in _ARRAY_FIELDS}, records
                )
            except Exception as exc:
                seed_info = {"seed": self.config.seed, "spawn_key": [slot, attempt]}
                records.append(
                    QuarantineRecord.from_exception(slot, attempt, is_ia, exc, seed_info)
                )
                self._clear_slot(0, arrays)
                attempt += 1
                if attempt > max_retries:
                    return _SlotResult(
                        slot,
                        None,
                        records,
                        message=(
                            f"sample slot {slot} failed {attempt} consecutive attempts "
                            f"(last: {type(exc).__name__}: {exc})"
                        ),
                    )

    def _complete_slot(
        self,
        result: _SlotResult,
        arrays: dict[str, np.ndarray],
        completed: np.ndarray,
        report: BuildReport,
        verbose: bool,
    ) -> None:
        """Fold one slot outcome into the arrays and the report.

        ``report.n_built`` always equals the number of completed slots —
        the same invariant in serial, parallel and resumed builds, and in
        the report carried by :class:`BuildAborted`.
        """
        session = obs.active()
        for rec in result.records:
            report.record(rec)
            self._emit(
                "build.quarantine",
                f"  quarantined sample {rec.slot} attempt {rec.attempt} "
                f"({rec.error_type}); redrawing",
                verbose,
                level="warning",
                slot=rec.slot,
                attempt=rec.attempt,
                error_type=rec.error_type,
                error_message=rec.error_message,
            )
            if session is not None:
                session.metrics.counter("build.quarantined").inc()
        if result.data is None:
            report.n_built = int(completed.sum())
            report.quarantined.sort(key=lambda rec: (rec.slot, rec.attempt))
            self.report = report
            self._emit(
                "build.abort",
                f"  {result.message}",
                False,
                level="error",
                slot=result.slot,
                n_built=report.n_built,
                n_target=report.n_target,
            )
            raise BuildAborted(result.message, report=report)
        for name in _ARRAY_FIELDS:
            arrays[name][result.slot] = result.data[name]
        completed[result.slot] = True
        report.n_built = int(completed.sum())
        if session is not None:
            session.emit(
                "build.slot",
                level="debug",
                slot=result.slot,
                attempts=len(result.records) + 1,
            )
            session.metrics.counter("build.slots_completed").inc()

    def _maybe_checkpoint(
        self,
        checkpoint_path: str | os.PathLike | None,
        checkpoint_every: int,
        arrays: dict[str, np.ndarray],
        class_flags: np.ndarray,
        completed: np.ndarray,
        report: BuildReport,
    ) -> None:
        if (
            checkpoint_path is not None
            and checkpoint_every > 0
            and int(completed.sum()) % checkpoint_every == 0
        ):
            self._save_build_checkpoint(
                checkpoint_path, arrays, class_flags, completed, report
            )

    def _progress(self, completed: np.ndarray, verbose: bool) -> None:
        done = int(completed.sum())
        if done % 50 == 0:
            self._emit(
                "build.progress",
                f"  built {done}/{len(completed)} samples",
                verbose,
                done=done,
                total=len(completed),
            )

    # ------------------------------------------------------------------
    # Fault isolation & checkpoint plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _clear_slot(i: int, arrays: dict[str, np.ndarray]) -> None:
        """Zero every array row of one sample slot after a failed attempt."""
        for name in _ARRAY_FIELDS:
            arrays[name][i] = "" if name == "sn_types" else 0

    def _save_build_checkpoint(
        self,
        path: str | os.PathLike,
        arrays: dict[str, np.ndarray],
        class_flags: np.ndarray,
        completed: np.ndarray,
        report: BuildReport,
    ) -> None:
        payload = dict(arrays)
        payload["class_flags"] = class_flags
        payload["completed"] = completed
        payload["meta"] = pack_json(
            {
                "report": report.to_dict(),
                "fingerprint": self._fingerprint(),
            }
        )
        atomic_savez(path, payload)

    def _load_build_checkpoint(
        self,
        path: str | os.PathLike,
        arrays: dict[str, np.ndarray],
    ) -> tuple[np.ndarray, BuildReport]:
        data = verified_load(path)
        meta = unpack_json(data["meta"])
        if meta["fingerprint"] != self._fingerprint():
            raise ValueError(
                f"build checkpoint {os.fspath(path)} was written with an incompatible "
                f"configuration: {meta['fingerprint']} != {self._fingerprint()}"
            )
        if not np.array_equal(data["class_flags"].astype(bool), self._class_flags()):
            raise ValueError(
                f"build checkpoint {os.fspath(path)} stores a class assignment that "
                f"does not match the config seed"
            )
        for name in _ARRAY_FIELDS:
            arrays[name][...] = data[name]
        return data["completed"].astype(bool), BuildReport.from_dict(meta["report"])

    def _build_one(
        self,
        i: int,
        is_ia: bool,
        rng: np.random.Generator,
        pairs: np.ndarray,
        visit_mjd: np.ndarray,
        visit_band: np.ndarray,
        true_flux: np.ndarray,
        labels: np.ndarray,
        sn_types: np.ndarray,
        redshifts: np.ndarray,
        host_mag: np.ndarray,
        sn_offset: np.ndarray,
        peak_mjd: np.ndarray,
    ) -> None:
        cfg = self.config
        placement = self.hosts.sample(rng)
        model = self.population.sample(is_ia, rng)
        plan = self.scheduler.generate(cfg.start_mjd, rng)
        peak = self.scheduler.sample_peak_mjd(plan, rng)
        curve = LightCurve(model, redshift=placement.host.photo_z, peak_mjd=peak)

        labels[i] = int(is_ia)
        sn_types[i] = curve.sn_type.value
        redshifts[i] = curve.redshift
        host_mag[i] = placement.host.magnitude_i
        sn_offset[i] = (placement.offset_x, placement.offset_y)
        peak_mjd[i] = peak

        # One deep reference per band, PSF-matched per visit below.
        references = (
            {
                band.index: self.simulator.reference(placement, band, rng)
                for band in GRIZY
            }
            if cfg.render_images
            else {}
        )

        for k, group in enumerate(plan.epoch_groups()[: cfg.epochs_per_band]):
            for b, visit in enumerate(group):
                v = k * N_BANDS + b
                band = visit.band
                night = self.simulator.conditions.sample(visit.mjd, rng)
                flux = float(curve.flux(band, visit.mjd))
                if not cfg.render_images:
                    visit_mjd[i, v] = visit.mjd
                    visit_band[i, v] = band.index
                    true_flux[i, v] = flux
                    continue
                exposure = self.simulator.observe(placement, band, flux, night, rng)
                reference = references[band.index]
                matched = difference_images(
                    reference.pixels.astype(np.float64),
                    exposure.pixels.astype(np.float64),
                    ref_fwhm=reference.conditions.seeing_fwhm,
                    obs_fwhm=night.seeing_fwhm,
                    pixel_scale=cfg.imaging.pixel_scale,
                    method="model",
                )
                # Store (matched reference, observation): their difference
                # is exactly the PSF-matched difference image.
                observation = exposure.pixels.astype(np.float32)
                matched_reference = (observation - matched.difference).astype(np.float32)
                pairs[i, v, 0] = matched_reference
                pairs[i, v, 1] = observation
                visit_mjd[i, v] = visit.mjd
                visit_band[i, v] = band.index
                true_flux[i, v] = flux
