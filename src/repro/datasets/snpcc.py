"""SNPCC-style photometric classification dataset.

The Supernova Photometric Classification Challenge (Kessler et al. 2010,
paper ref [7]) is the de-facto standard benchmark the paper's Table-2
comparators were evaluated on.  Unlike the paper's own dataset it has

* **no images** — only flux measurements with realistic errors,
* an **irregular** number of observations per band (4-40 in the
  challenge), set by cadence and the transient's visibility window,
* an **unbalanced** class mix (~25% SNIa among all supernovae),
* flux uncertainties from a survey-like noise floor.

This generator produces that structure from the same light-curve
substrate, so methods can be compared across both dataset styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..catalog import CosmosCatalog
from ..lightcurves import LightCurve, PopulationModel
from ..photometry import GRIZY

__all__ = ["SNPCCConfig", "SNPCCSample", "SNPCCDataset", "generate_snpcc"]


@dataclass
class SNPCCConfig:
    """Knobs of the SNPCC-style generator."""

    n_samples: int = 1000
    ia_fraction: float = 0.25
    cadence_days: float = 5.0
    season_days: float = 120.0
    flux_error_floor: float = 1.0
    flux_error_scale: float = 0.02
    detection_snr: float = 3.0
    min_observations: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if not 0 < self.ia_fraction < 1:
            raise ValueError("ia_fraction must be in (0, 1)")
        if self.cadence_days <= 0 or self.season_days <= self.cadence_days:
            raise ValueError("need 0 < cadence_days < season_days")


@dataclass
class SNPCCSample:
    """One photometric supernova: irregular multi-band flux series.

    Attributes
    ----------
    mjd, band, flux, flux_err:
        Aligned per-observation arrays (only epochs where the object was
        detectable in at least one band are kept).
    is_ia:
        Class label.
    redshift:
        True redshift (available to "+ redshift" methods).
    sn_type:
        Type code string.
    """

    mjd: np.ndarray
    band: np.ndarray
    flux: np.ndarray
    flux_err: np.ndarray
    is_ia: bool
    redshift: float
    sn_type: str

    @property
    def n_observations(self) -> int:
        return len(self.mjd)


@dataclass
class SNPCCDataset:
    """A collection of SNPCC-style samples."""

    samples: list[SNPCCSample]
    config: SNPCCConfig = field(repr=False, default_factory=SNPCCConfig)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> SNPCCSample:
        return self.samples[index]

    def labels(self) -> np.ndarray:
        return np.array([int(s.is_ia) for s in self.samples])

    def observation_counts(self) -> np.ndarray:
        return np.array([s.n_observations for s in self.samples])


def generate_snpcc(config: SNPCCConfig | None = None) -> SNPCCDataset:
    """Generate an SNPCC-style dataset.

    Each object gets a survey season of cadenced visits (one band per
    visit, rotating through g,r,i,z,y), fluxes from its light curve, and
    heteroscedastic errors; visits before detection or after fading are
    dropped, giving the challenge's 4-40 observation spread.
    """
    config = config or SNPCCConfig()
    rng = np.random.default_rng(config.seed)
    population = PopulationModel()
    catalog = CosmosCatalog(max(200, config.n_samples // 2), seed=config.seed + 1)

    samples: list[SNPCCSample] = []
    attempts = 0
    while len(samples) < config.n_samples:
        attempts += 1
        if attempts > config.n_samples * 20:
            raise RuntimeError(
                "too many rejected objects; lower detection_snr or min_observations"
            )
        is_ia = bool(rng.random() < config.ia_fraction)
        model = population.sample(is_ia, rng)
        host = catalog[int(rng.integers(len(catalog)))]
        peak_mjd = float(rng.uniform(20.0, config.season_days - 20.0))
        curve = LightCurve(model, redshift=host.photo_z, peak_mjd=peak_mjd)

        mjds, bands, fluxes, errors = [], [], [], []
        t = float(rng.uniform(0.0, config.cadence_days))
        visit = 0
        while t < config.season_days:
            band = GRIZY[visit % len(GRIZY)]
            true_flux = float(curve.flux(band, t))
            err = float(
                np.hypot(config.flux_error_floor, config.flux_error_scale * true_flux)
            )
            measured = true_flux + rng.normal(0.0, err)
            if measured / err >= config.detection_snr:
                mjds.append(t)
                bands.append(band.index)
                fluxes.append(measured)
                errors.append(err)
            t += config.cadence_days * rng.uniform(0.8, 1.2)
            visit += 1

        if len(mjds) < config.min_observations:
            continue  # challenge cut: too few detections to classify
        samples.append(
            SNPCCSample(
                mjd=np.array(mjds),
                band=np.array(bands),
                flux=np.array(fluxes),
                flux_err=np.array(errors),
                is_ia=is_ia,
                redshift=host.photo_z,
                sn_type=curve.sn_type.value,
            )
        )
    return SNPCCDataset(samples=samples, config=config)
