"""Immutable, checksummed, versioned model store (``registry.json``).

A registry is a directory with one atomic state file and one immutable
subdirectory per registered model version::

    registry/
      registry.json          # atomic state: pointers, statuses, audit log
      versions/
        v1/  flux_cnn.npz  classifier.npz  manifest.json  flux_prior.json ...
        v2/  ...

Every file copied into a ``versions/<vN>/`` directory is pinned by its
SHA-256 at registration time; :meth:`ModelRegistry.verify` re-hashes the
directory and raises :class:`~repro.runtime.errors.CorruptArtifactError`
naming the *file* that drifted, so a bit-flipped or truncated version
can never be promoted or hot-loaded.  ``registry.json`` itself is only
ever replaced whole (:func:`~repro.runtime.checkpoint.atomic_write_json`),
which is what lets the serving daemon's version watcher poll it while
the CLI mutates it.

Version lifecycle (statuses)::

    registered --shadow--> shadow --promote--> production
        \\------------promote------------------^    |
                                                    | rollback /
    retired <--(demoted by a later promote)---------+  quarantine
                                                    v
                                              rolled_back   (refused by
                                                             promote
                                                             without force)

Operational errors (unknown version, promoting a quarantined version
without ``force``, rolling back with no previous good version) raise
:class:`RegistryError`; the CLI maps it to exit code 2.  Integrity
failures raise :class:`CorruptArtifactError` (exit code 3).
"""

from __future__ import annotations

import json
import os
import shutil
import time

from ..runtime.checkpoint import atomic_write_json, file_sha256
from ..runtime.errors import CorruptArtifactError

__all__ = [
    "ModelRegistry",
    "RegistryError",
    "REGISTRY_FILE",
    "VERSIONS_DIR",
    "STATUS_REGISTERED",
    "STATUS_SHADOW",
    "STATUS_PRODUCTION",
    "STATUS_RETIRED",
    "STATUS_ROLLED_BACK",
]

REGISTRY_FILE = "registry.json"
VERSIONS_DIR = "versions"

#: Bumped when the state-file layout changes incompatibly.
STATE_FORMAT_VERSION = 1

STATUS_REGISTERED = "registered"
STATUS_SHADOW = "shadow"
STATUS_PRODUCTION = "production"
STATUS_RETIRED = "retired"
STATUS_ROLLED_BACK = "rolled_back"

_ALL_STATUSES = frozenset(
    {
        STATUS_REGISTERED,
        STATUS_SHADOW,
        STATUS_PRODUCTION,
        STATUS_RETIRED,
        STATUS_ROLLED_BACK,
    }
)

#: A model directory must at least carry its manifest to be registrable.
_REQUIRED_FILES = ("manifest.json",)


class RegistryError(RuntimeError):
    """An invalid registry operation (not an integrity failure)."""


def _now() -> float:
    return round(time.time(), 3)


class ModelRegistry:
    """Versioned model store rooted at ``root``.

    All mutating methods follow read-state → mutate → atomic-write, so
    a crash between any two operations leaves a consistent state file.
    Concurrent writers (CLI vs. daemon auto-rollback) are last-writer-
    wins on the whole document — acceptable because every mutation is a
    human- or guard-initiated control action, not a data-plane write.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)

    # ------------------------------------------------------------------
    # State IO

    @property
    def state_path(self) -> str:
        return os.path.join(self.root, REGISTRY_FILE)

    @property
    def versions_root(self) -> str:
        return os.path.join(self.root, VERSIONS_DIR)

    def path(self, version: str) -> str:
        """Directory holding ``version``'s immutable files."""
        return os.path.join(self.versions_root, version)

    @staticmethod
    def _fresh_state() -> dict:
        return {
            "format_version": STATE_FORMAT_VERSION,
            "next_version": 1,
            "production": None,
            "candidate": None,
            "versions": {},
            "history": [],
        }

    def state(self) -> dict:
        """Parse and validate ``registry.json`` (fresh state if absent)."""
        path = self.state_path
        if not os.path.exists(path):
            return self._fresh_state()
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptArtifactError(path, f"unreadable registry state: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(doc.get("versions"), dict):
            raise CorruptArtifactError(path, "registry state is not a versions document")
        if doc.get("format_version") != STATE_FORMAT_VERSION:
            raise CorruptArtifactError(
                path,
                f"unsupported registry format {doc.get('format_version')!r} "
                f"(this build reads format {STATE_FORMAT_VERSION})",
            )
        for version, record in doc["versions"].items():
            if not isinstance(record, dict) or record.get("status") not in _ALL_STATUSES:
                raise CorruptArtifactError(
                    path, f"version {version!r} has an invalid record"
                )
        return doc

    def _write(self, state: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        atomic_write_json(self.state_path, state)

    @staticmethod
    def _audit(state: dict, action: str, version: str | None = None, *,
               by: str | None = None, reason: str | None = None, **extra) -> dict:
        entry: dict = {"action": action, "at": _now()}
        if version is not None:
            entry["version"] = version
        if by is not None:
            entry["by"] = by
        if reason is not None:
            entry["reason"] = reason
        entry.update({k: v for k, v in extra.items() if v is not None})
        state.setdefault("history", []).append(entry)
        return entry

    @staticmethod
    def _require(state: dict, version: str) -> dict:
        record = state["versions"].get(version)
        if record is None:
            known = ", ".join(sorted(state["versions"])) or "none"
            raise RegistryError(f"unknown version {version!r} (registered: {known})")
        if record.get("removed"):
            raise RegistryError(
                f"version {version} was garbage-collected; re-register the model"
            )
        return record

    # ------------------------------------------------------------------
    # Read-side accessors

    def production(self) -> str | None:
        """Currently promoted version, or ``None``."""
        return self.state().get("production")

    def candidate(self) -> str | None:
        """Current shadow candidate, or ``None``."""
        return self.state().get("candidate")

    def records(self) -> list[tuple[str, dict]]:
        """``(version, record)`` pairs sorted by version number."""
        state = self.state()
        return sorted(
            state["versions"].items(),
            key=lambda item: int(item[0].lstrip("v") or 0),
        )

    def history(self) -> list[dict]:
        """The append-only audit log."""
        return list(self.state().get("history", []))

    # ------------------------------------------------------------------
    # Integrity

    def verify(self, version: str) -> None:
        """Re-hash every pinned file of ``version``; raise on any drift.

        :class:`CorruptArtifactError` names the offending *file* —
        missing, extra (immutability breach) or checksum-mismatched —
        not just the version directory.
        """
        state = self.state()
        record = self._require(state, version)
        directory = self.path(version)
        if not os.path.isdir(directory):
            raise CorruptArtifactError(directory, "version directory is missing")
        for name, expected in sorted(record["files"].items()):
            file_path = os.path.join(directory, name)
            if not os.path.isfile(file_path):
                raise CorruptArtifactError(file_path, "pinned file is missing")
            actual = file_sha256(file_path)
            if actual != expected:
                raise CorruptArtifactError(
                    file_path,
                    f"checksum mismatch (pinned {expected[:12]}…, computed {actual[:12]}…)",
                )
        extra = sorted(set(os.listdir(directory)) - set(record["files"]))
        if extra:
            raise CorruptArtifactError(
                directory, f"unexpected files in immutable version dir: {extra}"
            )

    # ------------------------------------------------------------------
    # Mutations

    def register(self, model_dir: str | os.PathLike, *, note: str | None = None,
                 by: str | None = None) -> str:
        """Copy ``model_dir`` in as the next version; return its name.

        The copy lands in a temporary sibling and is renamed into
        ``versions/<vN>/`` only once every file is hashed, so a crash
        mid-register never leaves a half-copied version visible.
        """
        model_dir = os.fspath(model_dir)
        if not os.path.isdir(model_dir):
            raise RegistryError(f"model directory {model_dir!r} does not exist")
        names = sorted(
            name for name in os.listdir(model_dir)
            if os.path.isfile(os.path.join(model_dir, name))
        )
        for required in _REQUIRED_FILES:
            if required not in names:
                raise RegistryError(
                    f"{model_dir!r} is not a saved model directory (no {required})"
                )
        state = self.state()
        version = f"v{state['next_version']}"
        state["next_version"] += 1
        destination = self.path(version)
        staging = destination + ".staging"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        checksums: dict[str, str] = {}
        for name in names:
            copied = os.path.join(staging, name)
            shutil.copy2(os.path.join(model_dir, name), copied)
            checksums[name] = file_sha256(copied)
        os.rename(staging, destination)
        state["versions"][version] = {
            "status": STATUS_REGISTERED,
            "created_at": _now(),
            "source": os.path.abspath(model_dir),
            "note": note,
            "files": checksums,
        }
        self._audit(state, "register", version, by=by, note=note)
        self._write(state)
        return version

    def promote(self, version: str, *, force: bool = False,
                by: str | None = None) -> tuple[str | None, str]:
        """Make ``version`` production; return ``(demoted, promoted)``.

        A quarantined (``rolled_back``) version is refused unless
        ``force`` — the operator must explicitly override the guard's
        decision.  The version directory is re-verified first, so a
        corrupt version can never become production.
        """
        state = self.state()
        record = self._require(state, version)
        if state.get("production") == version:
            raise RegistryError(f"version {version} is already production")
        if record["status"] == STATUS_ROLLED_BACK and not force:
            reason = record.get("reason") or "no reason recorded"
            raise RegistryError(
                f"version {version} was rolled back ({reason}); "
                "pass --force to promote it anyway"
            )
        self.verify(version)
        demoted = state.get("production")
        if demoted is not None:
            state["versions"][demoted]["status"] = STATUS_RETIRED
            state["versions"][demoted]["retired_at"] = _now()
        if state.get("candidate") == version:
            state["candidate"] = None
        record["status"] = STATUS_PRODUCTION
        record["promoted_at"] = _now()
        state["production"] = version
        self._audit(state, "promote", version, by=by,
                    demoted=demoted, force=force or None)
        self._write(state)
        return demoted, version

    def shadow(self, version: str, *, by: str | None = None) -> str:
        """Make ``version`` the shadow candidate; return its name."""
        state = self.state()
        record = self._require(state, version)
        if state.get("production") == version:
            raise RegistryError(f"version {version} is already production")
        if record["status"] == STATUS_ROLLED_BACK:
            reason = record.get("reason") or "no reason recorded"
            raise RegistryError(
                f"version {version} was rolled back ({reason}); "
                "re-register a fixed model instead of shadowing it"
            )
        self.verify(version)
        previous = state.get("candidate")
        if previous is not None and previous != version:
            state["versions"][previous]["status"] = STATUS_REGISTERED
        record["status"] = STATUS_SHADOW
        state["candidate"] = version
        self._audit(state, "shadow", version, by=by, replaced=previous)
        self._write(state)
        return version

    def clear_candidate(self, *, by: str | None = None,
                        reason: str | None = None) -> str | None:
        """Demote the shadow candidate back to ``registered``."""
        state = self.state()
        version = state.get("candidate")
        if version is None:
            return None
        state["versions"][version]["status"] = STATUS_REGISTERED
        state["candidate"] = None
        self._audit(state, "clear_candidate", version, by=by, reason=reason)
        self._write(state)
        return version

    def rollback(self, *, reason: str = "manual rollback",
                 by: str | None = None) -> tuple[str, str]:
        """Quarantine production, reinstate the last-known-good version.

        Returns ``(quarantined, restored)``.  Last-known-good is the
        most recently retired version — i.e. the one production demoted
        when the now-bad version was promoted.
        """
        state = self.state()
        bad = state.get("production")
        if bad is None:
            raise RegistryError("no production version to roll back")
        retired = [
            (record.get("retired_at", 0.0), version)
            for version, record in state["versions"].items()
            if record["status"] == STATUS_RETIRED and not record.get("removed")
        ]
        if not retired:
            raise RegistryError(
                f"no previous good version to roll back to from {bad}"
            )
        restored = max(retired)[1]
        bad_record = state["versions"][bad]
        bad_record["status"] = STATUS_ROLLED_BACK
        bad_record["reason"] = reason
        bad_record["rolled_back_at"] = _now()
        restored_record = state["versions"][restored]
        restored_record["status"] = STATUS_PRODUCTION
        restored_record.pop("retired_at", None)
        state["production"] = restored
        self._audit(state, "rollback", bad, by=by, reason=reason, restored=restored)
        self._write(state)
        return bad, restored

    def quarantine(self, version: str, reason: str, *,
                   by: str | None = None) -> None:
        """Mark a non-production version ``rolled_back`` (bad candidate)."""
        state = self.state()
        record = self._require(state, version)
        if state.get("production") == version:
            raise RegistryError(
                f"version {version} is production; use rollback, not quarantine"
            )
        if state.get("candidate") == version:
            state["candidate"] = None
        record["status"] = STATUS_ROLLED_BACK
        record["reason"] = reason
        record["rolled_back_at"] = _now()
        self._audit(state, "quarantine", version, by=by, reason=reason)
        self._write(state)

    def gc(self, *, keep: int = 2, by: str | None = None) -> list[str]:
        """Delete old retired / rolled-back version dirs; keep ``keep`` newest.

        Production, the shadow candidate and plain registered versions
        are never collected.  Removed versions stay in the state file
        (``removed: true``) so the audit trail survives the bytes.
        """
        if keep < 0:
            raise RegistryError("keep must be >= 0")
        state = self.state()
        collectable = sorted(
            (
                (record.get("created_at", 0.0), version)
                for version, record in state["versions"].items()
                if record["status"] in (STATUS_RETIRED, STATUS_ROLLED_BACK)
                and not record.get("removed")
            ),
            reverse=True,
        )
        removed = []
        for _, version in collectable[keep:]:
            directory = self.path(version)
            if os.path.isdir(directory):
                shutil.rmtree(directory)
            state["versions"][version]["removed"] = True
            removed.append(version)
        if removed:
            self._audit(state, "gc", by=by, removed=removed, keep=keep)
            self._write(state)
        return removed
