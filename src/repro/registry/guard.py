"""Rollback decision logic for the serving daemon's registry loop.

Pure bookkeeping, no threads and no IO: the daemon feeds
:class:`RollbackGuard` two independent signals and acts when either
crosses its configured budget —

* **production drift** — after each scored micro-batch the daemon runs
  its :class:`~repro.obs.drift.DriftMonitor` (PSI/KS against the model's
  committed baseline) and reports ``flagged``; the guard demands
  ``sustained_checks`` *consecutive* flagged evaluations before asking
  for a rollback, so one noisy window cannot unseat a good model;
* **shadow divergence** — the shadow worker reports per-sample
  ``|p_candidate - p_production|``; the guard keeps a rolling window
  and trips once the window holds at least ``divergence_min_samples``
  and its mean exceeds ``divergence_budget``.

All methods are called under the daemon's own locks; the guard itself
only needs to be consistent, not thread-safe.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["GuardConfig", "RollbackGuard"]


@dataclass(frozen=True)
class GuardConfig:
    """Budgets for drift-triggered rollback and shadow quarantine.

    ``drift_window`` / ``drift_min_samples`` and the PSI/KS thresholds
    parameterise the daemon-owned :class:`~repro.obs.drift.DriftMonitor`
    (they intentionally default tighter than the offline monitor: a
    serving rollback should fire within seconds, not after 500 samples).
    """

    drift_window: int = 200
    drift_min_samples: int = 50
    psi_threshold: float = 0.25
    ks_threshold: float = 0.30
    sustained_checks: int = 3
    divergence_budget: float = 0.15
    divergence_window: int = 200
    divergence_min_samples: int = 20

    def __post_init__(self) -> None:
        if self.drift_window < self.drift_min_samples or self.drift_min_samples < 1:
            raise ValueError("need drift_window >= drift_min_samples >= 1")
        if self.sustained_checks < 1:
            raise ValueError("sustained_checks must be >= 1")
        if not 0.0 < self.divergence_budget <= 1.0:
            raise ValueError("divergence_budget must be in (0, 1]")
        if (
            self.divergence_window < self.divergence_min_samples
            or self.divergence_min_samples < 1
        ):
            raise ValueError("need divergence_window >= divergence_min_samples >= 1")


class RollbackGuard:
    """Accumulates drift flags and shadow divergences against budgets."""

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config or GuardConfig()
        self._consecutive_flags = 0
        self._divergences: deque[float] = deque(maxlen=self.config.divergence_window)

    # -- production drift ------------------------------------------------

    def note_drift(self, flagged: bool) -> bool:
        """Record one monitor evaluation; ``True`` when drift is sustained."""
        if flagged:
            self._consecutive_flags += 1
        else:
            self._consecutive_flags = 0
        return self._consecutive_flags >= self.config.sustained_checks

    def reset_drift(self) -> None:
        """Forget drift history (called at every engine swap)."""
        self._consecutive_flags = 0

    # -- shadow divergence ----------------------------------------------

    def note_divergence(self, divergences) -> bool:
        """Record per-sample |Δp|; ``True`` when the budget is exceeded."""
        for value in divergences:
            self._divergences.append(float(value))
        if len(self._divergences) < self.config.divergence_min_samples:
            return False
        return self.divergence_mean() > self.config.divergence_budget

    def divergence_mean(self) -> float:
        """Mean |Δp| over the rolling window (NaN when empty)."""
        if not self._divergences:
            return math.nan
        return sum(self._divergences) / len(self._divergences)

    def divergence_count(self) -> int:
        """Number of samples currently in the divergence window."""
        return len(self._divergences)

    def reset_divergence(self) -> None:
        """Forget divergence history (called when the candidate changes)."""
        self._divergences.clear()
