"""Versioned model registry: immutable store, lifecycle, rollback guard.

The serving stack changes models without dropping traffic by routing
every deploy through this package:

* :mod:`repro.registry.store` — :class:`ModelRegistry`: checksummed
  immutable ``versions/<vN>/`` directories plus an atomically replaced
  ``registry.json`` holding the production/candidate pointers, version
  statuses and the append-only audit log (``repro models
  list/register/promote/rollback/gc`` CLI);
* :mod:`repro.registry.guard` — :class:`RollbackGuard` /
  :class:`GuardConfig`: the pure decision logic behind the daemon's
  drift-triggered automatic rollback and shadow-divergence quarantine.

The daemon side (version watcher, hot swap, shadow scoring) lives in
:mod:`repro.serve.daemon`, which depends on this package — never the
other way around.
"""

from .guard import GuardConfig, RollbackGuard
from .store import (
    REGISTRY_FILE,
    STATUS_PRODUCTION,
    STATUS_REGISTERED,
    STATUS_RETIRED,
    STATUS_ROLLED_BACK,
    STATUS_SHADOW,
    VERSIONS_DIR,
    ModelRegistry,
    RegistryError,
)

__all__ = [
    "ModelRegistry",
    "RegistryError",
    "GuardConfig",
    "RollbackGuard",
    "REGISTRY_FILE",
    "VERSIONS_DIR",
    "STATUS_REGISTERED",
    "STATUS_SHADOW",
    "STATUS_PRODUCTION",
    "STATUS_RETIRED",
    "STATUS_ROLLED_BACK",
]
