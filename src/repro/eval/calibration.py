"""Probability calibration diagnostics.

Spectroscopic follow-up time is scarce (the paper: at most ~100 of 10^7
candidates get follow-up), so the *calibration* of P(SNIa) matters as
much as its ranking: targets are picked by thresholding the probability.
This module provides reliability curves, expected calibration error and
the Brier score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityCurve", "reliability_curve", "expected_calibration_error", "brier_score"]


@dataclass(frozen=True)
class ReliabilityCurve:
    """Binned predicted-vs-observed positive rates.

    Attributes
    ----------
    bin_centers:
        Midpoints of the probability bins that contain samples.
    mean_predicted:
        Average predicted probability per occupied bin.
    fraction_positive:
        Empirical positive rate per occupied bin.
    counts:
        Samples per occupied bin.
    """

    bin_centers: np.ndarray
    mean_predicted: np.ndarray
    fraction_positive: np.ndarray
    counts: np.ndarray


def _validate(labels: np.ndarray, probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).reshape(-1).astype(float)
    probs = np.asarray(probs, dtype=float).reshape(-1)
    if labels.shape != probs.shape:
        raise ValueError("labels and probabilities must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("probabilities must be in [0, 1]")
    if not np.all(np.isin(labels, [0.0, 1.0])):
        raise ValueError("labels must be binary")
    return labels, probs


def reliability_curve(
    labels: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> ReliabilityCurve:
    """Bin predictions and compare with observed outcome rates."""
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    labels, probs = _validate(labels, probs)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    indices = np.clip(np.digitize(probs, edges) - 1, 0, n_bins - 1)
    centers, mean_pred, frac_pos, counts = [], [], [], []
    for b in range(n_bins):
        mask = indices == b
        if not np.any(mask):
            continue
        centers.append((edges[b] + edges[b + 1]) / 2.0)
        mean_pred.append(float(probs[mask].mean()))
        frac_pos.append(float(labels[mask].mean()))
        counts.append(int(mask.sum()))
    return ReliabilityCurve(
        bin_centers=np.array(centers),
        mean_predicted=np.array(mean_pred),
        fraction_positive=np.array(frac_pos),
        counts=np.array(counts),
    )


def expected_calibration_error(
    labels: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted |predicted - observed| over probability bins."""
    curve = reliability_curve(labels, probs, n_bins)
    weights = curve.counts / curve.counts.sum()
    return float(np.sum(weights * np.abs(curve.mean_predicted - curve.fraction_positive)))


def brier_score(labels: np.ndarray, probs: np.ndarray) -> float:
    """Mean squared error of probabilities against outcomes (lower = better)."""
    labels, probs = _validate(labels, probs)
    return float(np.mean((probs - labels) ** 2))
