"""Bootstrap uncertainty estimates for classification metrics.

The paper reports point AUCs; at CPU-reproduction scale the test sets
are small enough that resampling uncertainty matters when comparing
methods.  This module provides percentile-bootstrap confidence intervals
for any ``metric(labels, scores) -> float``, with stratified resampling
so every replicate keeps both classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .roc import auc_score

__all__ = ["BootstrapResult", "bootstrap_metric", "bootstrap_auc"]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile confidence interval."""

    estimate: float
    low: float
    high: float
    n_resamples: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_metric(
    labels: np.ndarray,
    scores: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile-bootstrap CI of ``metric`` under test-set resampling.

    Resampling is stratified per class, so metrics requiring both classes
    (AUC) are always defined on replicates.
    """
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if n_resamples <= 0:
        raise ValueError("n_resamples must be positive")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    pos_idx = np.flatnonzero(labels == 1)
    neg_idx = np.flatnonzero(labels == 0)
    if len(pos_idx) == 0 or len(neg_idx) == 0:
        raise ValueError("need both classes to bootstrap a classification metric")

    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resampled = np.concatenate(
            [
                rng.choice(pos_idx, size=len(pos_idx), replace=True),
                rng.choice(neg_idx, size=len(neg_idx), replace=True),
            ]
        )
        estimates[i] = metric(labels[resampled], scores[resampled])

    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(metric(labels, scores)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        n_resamples=n_resamples,
    )


def bootstrap_auc(
    labels: np.ndarray,
    scores: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CI of the ROC AUC."""
    return bootstrap_metric(
        labels, scores, auc_score, n_resamples=n_resamples, confidence=confidence, seed=seed
    )
