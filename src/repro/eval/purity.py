"""Purity / efficiency analysis for follow-up target selection.

Supernova cosmology quantifies classifiers with *purity* (fraction of
selected candidates that are really SNIa) and *efficiency* (fraction of
true SNIa selected) as the probability threshold sweeps — plus the
SNPCC figure of merit, which penalises contamination:

    FoM = efficiency * purity_pseudo,
    purity_pseudo = TP / (TP + W * FP),  W = 3 in the challenge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PurityCurve", "purity_efficiency_curve", "snpcc_figure_of_merit"]


@dataclass(frozen=True)
class PurityCurve:
    """Purity and efficiency as functions of the selection threshold.

    Attributes
    ----------
    thresholds:
        Score thresholds, increasing.
    purity:
        TP / (TP + FP) among candidates with score >= threshold (1.0
        where nothing is selected, by convention).
    efficiency:
        TP / P — the completeness of the selection.
    """

    thresholds: np.ndarray
    purity: np.ndarray
    efficiency: np.ndarray

    def at_efficiency(self, target: float) -> float:
        """Purity at the loosest threshold reaching ``target`` efficiency."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target efficiency must be in (0, 1]")
        eligible = self.efficiency >= target
        if not np.any(eligible):
            return 0.0
        return float(self.purity[eligible].max())


def _validate(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).reshape(-1).astype(int)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    if labels.sum() == 0:
        raise ValueError("need at least one positive sample")
    return labels, scores


def purity_efficiency_curve(
    labels: np.ndarray, scores: np.ndarray, n_thresholds: int = 101
) -> PurityCurve:
    """Sweep thresholds over the score range."""
    labels, scores = _validate(labels, scores)
    if n_thresholds < 2:
        raise ValueError("need at least two thresholds")
    thresholds = np.linspace(scores.min(), scores.max(), n_thresholds)
    n_pos = labels.sum()
    purity = np.empty(n_thresholds)
    efficiency = np.empty(n_thresholds)
    for i, threshold in enumerate(thresholds):
        selected = scores >= threshold
        tp = int(np.sum(selected & (labels == 1)))
        fp = int(np.sum(selected & (labels == 0)))
        purity[i] = tp / (tp + fp) if (tp + fp) else 1.0
        efficiency[i] = tp / n_pos
    return PurityCurve(thresholds=thresholds, purity=purity, efficiency=efficiency)


def snpcc_figure_of_merit(
    labels: np.ndarray,
    scores: np.ndarray,
    threshold: float = 0.5,
    false_positive_weight: float = 3.0,
) -> float:
    """The challenge's FoM at a fixed threshold (higher is better)."""
    labels, scores = _validate(labels, scores)
    if false_positive_weight <= 0:
        raise ValueError("false_positive_weight must be positive")
    selected = scores >= threshold
    tp = int(np.sum(selected & (labels == 1)))
    fp = int(np.sum(selected & (labels == 0)))
    n_pos = int(labels.sum())
    if tp == 0:
        return 0.0
    efficiency = tp / n_pos
    pseudo_purity = tp / (tp + false_positive_weight * fp)
    return float(efficiency * pseudo_purity)
