"""Evaluation metrics: ROC/AUC, point metrics and calibration."""

from .bootstrap import BootstrapResult, bootstrap_auc, bootstrap_metric
from .calibration import (
    ReliabilityCurve,
    brier_score,
    expected_calibration_error,
    reliability_curve,
)
from .metrics import ConfusionMatrix, accuracy, best_accuracy, confusion_matrix
from .purity import PurityCurve, purity_efficiency_curve, snpcc_figure_of_merit
from .roc import RocCurve, auc_score, rank_auc, roc_curve

__all__ = [
    "RocCurve",
    "roc_curve",
    "auc_score",
    "rank_auc",
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "best_accuracy",
    "BootstrapResult",
    "bootstrap_metric",
    "bootstrap_auc",
    "PurityCurve",
    "purity_efficiency_curve",
    "snpcc_figure_of_merit",
    "ReliabilityCurve",
    "reliability_curve",
    "expected_calibration_error",
    "brier_score",
]
