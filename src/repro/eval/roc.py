"""ROC curves and AUC.

The paper's classification results (Figs. 9-11, Table 2) are reported as
ROC curves and their area.  Implemented from scratch: a threshold sweep
for the curve and both the trapezoidal and the Mann-Whitney (rank) AUC —
they must agree, which the tests exploit as an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RocCurve", "roc_curve", "auc_score", "rank_auc"]

# numpy 2.0 renamed ``np.trapz`` to ``np.trapezoid`` and later removed the
# old name; pyproject supports numpy>=1.26, so resolve whichever spelling
# this interpreter has at import time (both getattr defaults are lazy —
# neither name may be referenced directly on the other major version).
_trapezoid = getattr(np, "trapezoid", None) or getattr(np, "trapz")


@dataclass(frozen=True)
class RocCurve:
    """A receiver-operating-characteristic curve.

    Attributes
    ----------
    fpr, tpr:
        False/true positive rates at each threshold, from (0, 0) to (1, 1).
    thresholds:
        Decision thresholds; the first entry is +inf (nothing positive).
    """

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        return float(_trapezoid(self.tpr, self.fpr))

    def tpr_at_fpr(self, target_fpr: float) -> float:
        """Interpolated TPR at a given false-positive rate."""
        if not 0.0 <= target_fpr <= 1.0:
            raise ValueError("target_fpr must be in [0, 1]")
        return float(np.interp(target_fpr, self.fpr, self.tpr))


def _validate(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    unique = np.unique(labels)
    if not np.all(np.isin(unique, [0, 1])):
        raise ValueError(f"labels must be binary 0/1, got {unique}")
    if unique.size < 2:
        raise ValueError("need both positive and negative samples")
    if not np.all(np.isfinite(scores)):
        raise ValueError("scores must be finite")
    return labels.astype(int), scores


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC curve of binary ``labels`` under ``scores``.

    Higher scores mean "more positive".  Tied scores are collapsed into a
    single threshold, so the curve is a step function without artefacts.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]

    # Indices where the score changes: thresholds between distinct values.
    distinct = np.flatnonzero(np.diff(sorted_scores)) if labels.size > 1 else np.array([])
    cut_indices = np.concatenate([distinct, [labels.size - 1]])

    tps = np.cumsum(sorted_labels)[cut_indices]
    fps = (cut_indices + 1) - tps
    n_pos = labels.sum()
    n_neg = labels.size - n_pos

    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_indices]])
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal over the computed curve)."""
    return roc_curve(labels, scores).auc


def rank_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUC via the Mann-Whitney U statistic (tie-aware).

    AUC = (sum of positive ranks - n_pos (n_pos+1)/2) / (n_pos * n_neg),
    with mid-ranks for ties.  Mathematically identical to the trapezoidal
    area, providing an independent implementation for cross-checks.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, labels.size + 1)
    # Mid-rank correction for ties.
    sorted_scores = scores[order]
    start = 0
    for end in range(1, labels.size + 1):
        if end == labels.size or sorted_scores[end] != sorted_scores[start]:
            if end - start > 1:
                mid = (start + 1 + end) / 2.0
                ranks[order[start:end]] = mid
            start = end
    n_pos = labels.sum()
    n_neg = labels.size - n_pos
    pos_rank_sum = ranks[labels == 1].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
