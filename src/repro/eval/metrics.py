"""Point metrics: accuracy, confusion counts, precision/recall."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfusionMatrix", "confusion_matrix", "accuracy", "best_accuracy"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def true_positive_rate(self) -> float:
        return self.recall

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0


def confusion_matrix(
    labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5
) -> ConfusionMatrix:
    """Confusion counts of ``scores >= threshold`` against binary labels."""
    labels = np.asarray(labels).reshape(-1).astype(bool)
    predictions = np.asarray(scores).reshape(-1) >= threshold
    if labels.shape != predictions.shape:
        raise ValueError("labels and scores must have the same length")
    return ConfusionMatrix(
        tp=int(np.sum(predictions & labels)),
        fp=int(np.sum(predictions & ~labels)),
        tn=int(np.sum(~predictions & ~labels)),
        fn=int(np.sum(~predictions & labels)),
    )


def accuracy(labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct hard decisions at ``threshold``."""
    return confusion_matrix(labels, scores, threshold).accuracy


def best_accuracy(labels: np.ndarray, scores: np.ndarray) -> float:
    """Accuracy at the optimal threshold (for Table-2 style comparisons
    against methods reported as accuracies)."""
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    thresholds = np.unique(scores)
    candidates = np.concatenate([[-np.inf], (thresholds[1:] + thresholds[:-1]) / 2, [np.inf]])
    return max(accuracy(labels, scores, t) for t in candidates)
