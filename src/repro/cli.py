"""Command-line interface.

The subcommands cover the full workflow::

    python -m repro.cli build-dataset --n-ia 100 --n-non-ia 100 --out ds.npz
    python -m repro.cli train-flux-cnn --dataset ds.npz --out cnn.npz
    python -m repro.cli train-classifier --dataset ds.npz --out clf.npz
    python -m repro.cli evaluate --dataset ds.npz --classifier clf.npz
    python -m repro.cli classify --model model_dir/ --dataset ds.npz
    python -m repro.cli serve --model model_dir/ --port 8350
    python -m repro.cli models register --registry reg/ --model model_dir/
    python -m repro.cli models promote v2 --registry reg/
    python -m repro.cli metrics telemetry_dir/

``classify`` is the degradation-tolerant batch serving path: it loads a
pipeline directory written by
:meth:`~repro.core.pipeline.SupernovaPipeline.save` and streams one JSON
result per sample, masking and imputing missing or damaged bands instead
of crashing.  Degraded-but-served traffic exits ``0``; ``--strict``
refuses it with exit code ``2`` instead.

``serve`` is the persistent flavour of the same path: a warm
:class:`~repro.serve.ServingDaemon` that coalesces concurrent HTTP
requests into micro-batches behind admission control, per-request
deadlines, poison-request isolation, a scoring-worker watchdog and
graceful drain on SIGTERM/SIGINT (see :mod:`repro.serve.daemon`).

``models`` manages the versioned model registry
(:mod:`repro.registry`): ``register`` copies a saved model directory in
as an immutable checksummed version, ``promote`` makes it production
(``--shadow`` stages it as the shadow candidate instead, ``--force``
overrides a quarantine), ``rollback`` reinstates the last-known-good
version, ``gc`` prunes old retired/rolled-back version directories.
``serve --registry DIR`` serves the registry's production version and
follows promotes/rollbacks live (hot reload, shadow scoring and
drift-triggered automatic rollback).

Datasets are ``.npz`` archives written by :mod:`repro.datasets.io`;
models are ``.npz`` state dicts written by :mod:`repro.nn.serialization`.

Long-running commands are resumable: ``build-dataset`` and the two
training commands accept ``--checkpoint PATH`` (plus
``--checkpoint-every N``) to snapshot progress atomically, and
``--resume`` to continue a killed run from that checkpoint.
``build-dataset --workers N`` renders sample slots across ``N``
processes; per-sample seeding makes the output bit-identical to a
serial build, and checkpoints are interchangeable between the two.

Exit codes (the one authoritative table — ``classify`` and ``serve``
share it, and with ``--telemetry`` every non-zero path leaves a terminal
``cli.error`` event carrying the same code):

====  ==============================================================
code  meaning
====  ==============================================================
0     success — including degraded-but-served traffic and a graceful
      daemon drain on SIGTERM/SIGINT
2     bad input: missing/unreadable paths, malformed arrays, strict-
      mode refusal of a degraded sample
3     corrupt artifact: truncated archive or checksum/manifest
      mismatch
4     unrecoverable runtime failure: training diverged beyond its
      retry budget, or the serve daemon's scoring-worker restart
      budget was exhausted
====  ==============================================================
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from . import obs
from .core import (
    BandwiseCNN,
    LightCurveClassifier,
    TrainConfig,
    fit_classifier,
    fit_regressor,
    make_pair_augmenter,
)
from .core.features import dataset_windowed_features
from .datasets import BuildConfig, DatasetBuilder, load_dataset, save_dataset, train_val_test_split
from .eval import auc_score, roc_curve
from .nn import load_module, save_module
from .registry import RegistryError
from .runtime import BuildAborted, CorruptArtifactError, TrainingDiverged

__all__ = ["main", "build_parser"]

#: Exit codes for the structured failure modes.
EXIT_BAD_INPUT = 2
EXIT_CORRUPT_ARTIFACT = 3
EXIT_DIVERGED = 4


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write structured telemetry (events.jsonl + metrics.json) into "
        "DIR; summarize it later with `repro metrics DIR`",
    )


def _note(message: str, event: str = "cli.note", level: str = "info",
          **fields: object) -> None:
    """Progress/summary reporting funnel.

    With telemetry enabled the line becomes a structured event; without
    it the human-readable rendering goes to stderr (stdout is reserved
    for command output such as the classify JSON stream).
    """
    session = obs.active()
    if session is not None:
        session.emit(event, level=level, message=message, **fields)
    else:
        print(message, file=sys.stderr)


def _fail(exc: BaseException, code: int, prefix: str = "error: ") -> int:
    """Report a structured failure: stderr line plus a terminal event.

    The event carries the exit code and, when the exception knows them
    (strict-mode :class:`~repro.serve.DegradedInputError`), the sample
    index and ``request_id`` that failed — so an exit-2/3 run is
    traceable from the telemetry stream alone.
    """
    print(f"{prefix}{exc}", file=sys.stderr)
    session = obs.active()
    if session is not None:
        fields: dict[str, object] = {
            "error_type": type(exc).__name__,
            "exit_code": code,
        }
        if getattr(exc, "index", None) is not None:
            fields["index"] = exc.index
        if getattr(exc, "request_id", None):
            fields["request_id"] = exc.request_id
        # CorruptArtifactError knows the *file* that failed validation;
        # surfacing it makes an exit-3 run diagnosable from telemetry.
        if getattr(exc, "path", None):
            fields["path"] = os.fspath(exc.path)
        session.emit("cli.error", level="error", message=str(exc), **fields)
    return code


def _add_checkpoint_args(parser: argparse.ArgumentParser, default_every: int) -> None:
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write an atomic progress checkpoint here",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=default_every, metavar="N",
        help="checkpoint interval (epochs for training, samples for builds)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint if it exists",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-epoch supernova classification (Kimura et al. 2017) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-dataset", help="generate a synthetic dataset")
    build.add_argument("--n-ia", type=int, default=100, help="SNIa samples")
    build.add_argument("--n-non-ia", type=int, default=100, help="non-Ia samples")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--no-images", action="store_true", help="light curves only")
    build.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="render sample slots across N processes (1 = serial; the "
        "dataset is bit-identical either way)",
    )
    build.add_argument("--out", required=True, help="output .npz path")
    build.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON build report (quarantined samples) here",
    )
    build.add_argument(
        "--stamp-size", type=int, default=None, metavar="PX",
        help="cutout side length in pixels (default: the paper's 65)",
    )
    build.add_argument(
        "--catalog-size", type=int, default=None, metavar="N",
        help="size of the synthetic host-galaxy catalog (default 5000)",
    )
    _add_checkpoint_args(build, default_every=200)
    _add_telemetry_arg(build)

    cnn = sub.add_parser("train-flux-cnn", help="train the band-wise CNN (Fig. 7)")
    cnn.add_argument("--dataset", required=True)
    cnn.add_argument("--input-size", type=int, default=60)
    cnn.add_argument("--epochs", type=int, default=10)
    cnn.add_argument("--batch-size", type=int, default=64)
    cnn.add_argument("--learning-rate", type=float, default=5e-4)
    cnn.add_argument("--seed", type=int, default=0)
    cnn.add_argument("--out", required=True, help="output weights .npz path")
    _add_checkpoint_args(cnn, default_every=1)
    _add_telemetry_arg(cnn)

    clf = sub.add_parser("train-classifier", help="train the highway classifier (Fig. 6)")
    clf.add_argument("--dataset", required=True)
    clf.add_argument("--epochs-used", type=int, default=1, help="observation epochs per feature")
    clf.add_argument("--units", type=int, default=100)
    clf.add_argument("--epochs", type=int, default=40)
    clf.add_argument("--seed", type=int, default=0)
    clf.add_argument("--out", required=True, help="output weights .npz path")
    _add_checkpoint_args(clf, default_every=1)
    _add_telemetry_arg(clf)

    ev = sub.add_parser("evaluate", help="evaluate a trained classifier")
    ev.add_argument("--dataset", required=True)
    ev.add_argument("--classifier", required=True)
    ev.add_argument("--epochs-used", type=int, default=1)
    ev.add_argument("--units", type=int, default=100)

    cl = sub.add_parser(
        "classify", help="serve degradation-tolerant per-sample predictions"
    )
    cl.add_argument(
        "--model", required=True, metavar="DIR",
        help="pipeline directory written by SupernovaPipeline.save",
    )
    cl.add_argument("--dataset", required=True, help="input .npz dataset")
    cl.add_argument(
        "--strict", action="store_true",
        help="refuse degraded samples (exit 2) instead of masking them",
    )
    cl.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSONL result stream here instead of stdout",
    )
    cl.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="samples per inference batch (results stream per batch)",
    )
    cl.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="classify batches on N threads (BLAS releases the GIL); "
        "results still stream in order",
    )
    cl.add_argument(
        "--mp", action="store_true",
        help="score on N worker *processes* (a shared-memory ScoringPool) "
        "instead of threads; bit-compatible with the single-process "
        "path and still streams in order.  With --workers 1 this is a "
        "pool of one process — the single-process fallback",
    )
    _add_telemetry_arg(cl)

    srv = sub.add_parser(
        "serve", help="run the persistent micro-batching serving daemon"
    )
    srv.add_argument(
        "--model", default=None, metavar="DIR",
        help="pipeline directory written by SupernovaPipeline.save "
        "(exactly one of --model / --registry)",
    )
    srv.add_argument(
        "--registry", default=None, metavar="DIR",
        help="serve the production version of this model registry and "
        "follow promotes/rollbacks live (hot reload + shadow scoring + "
        "automatic rollback)",
    )
    srv.add_argument(
        "--reload-poll-s", type=float, default=0.25, metavar="S",
        help="how often the registry version watcher re-reads registry.json",
    )
    srv.add_argument(
        "--divergence-budget", type=float, default=0.15, metavar="D",
        help="mean shadow |Δp| beyond which the candidate is quarantined",
    )
    srv.add_argument(
        "--sustained-drift-checks", type=int, default=3, metavar="N",
        help="consecutive flagged drift evaluations before auto-rollback",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=0, metavar="P",
        help="bind port (0 = pick a free port; the chosen port is printed)",
    )
    srv.add_argument(
        "--batch-max-size", type=int, default=16, metavar="N",
        help="max requests coalesced into one scoring batch",
    )
    srv.add_argument(
        "--batch-deadline-ms", type=float, default=10.0, metavar="MS",
        help="max time the oldest queued request waits for batch-mates",
    )
    srv.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="hard admission limit; beyond it requests are shed with 429",
    )
    srv.add_argument(
        "--request-deadline-ms", type=float, default=2000.0, metavar="MS",
        help="default per-request deadline (typed 504 past it)",
    )
    srv.add_argument(
        "--wedge-timeout-s", type=float, default=5.0, metavar="S",
        help="scoring batches older than this get the worker restarted",
    )
    srv.add_argument(
        "--scoring-workers", type=int, default=0, metavar="N",
        help="scatter each scoring micro-batch across N warm worker "
        "processes over shared memory (0 = score in-process); BLAS "
        "threads are split N ways so the workers never oversubscribe",
    )
    srv.add_argument(
        "--strict", action="store_true",
        help="refuse degraded samples with a typed 422 instead of masking",
    )
    srv.add_argument(
        "--precision", choices=("float32", "float16"), default="float32",
        help="inference activation storage precision of the fused CNN "
        "path (GEMMs always accumulate in float32; float16 accuracy is "
        "gated by the benchmark's AUC check)",
    )
    srv.add_argument(
        "--trace", nargs="?", const="always", default=None, metavar="SPEC",
        help="record per-request span trees into the telemetry directory "
        "(requires --telemetry); SPEC is always (default), rate:FRACTION "
        "or slow:MS (slow-request capture); analyze with `repro trace DIR`",
    )
    srv.add_argument(
        "--latency-buckets-ms", default=None, metavar="MS,MS,...",
        help="override the daemon.latency_s histogram buckets (comma-"
        "separated milliseconds, strictly increasing)",
    )
    _add_telemetry_arg(srv)

    mod = sub.add_parser(
        "models", help="manage the versioned model registry"
    )
    modsub = mod.add_subparsers(dest="models_command", required=True)

    def _registry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--registry", required=True, metavar="DIR",
            help="registry root (created on first register)",
        )

    m_list = modsub.add_parser("list", help="list versions and their statuses")
    _registry_arg(m_list)
    m_list.add_argument(
        "--json", action="store_true", help="dump the raw registry state as JSON"
    )
    m_reg = modsub.add_parser(
        "register", help="copy a saved model dir in as the next version"
    )
    _registry_arg(m_reg)
    m_reg.add_argument(
        "--model", required=True, metavar="DIR",
        help="pipeline directory written by SupernovaPipeline.save",
    )
    m_reg.add_argument("--note", default=None, help="free-form audit note")
    m_reg.add_argument(
        "--promote", action="store_true",
        help="immediately promote the new version to production",
    )
    m_reg.add_argument(
        "--shadow", action="store_true",
        help="immediately stage the new version as the shadow candidate",
    )
    m_pro = modsub.add_parser(
        "promote", help="make a version production (or stage it with --shadow)"
    )
    _registry_arg(m_pro)
    m_pro.add_argument("version", help="version to promote, e.g. v2")
    m_pro.add_argument(
        "--shadow", action="store_true",
        help="stage as the shadow candidate instead of promoting",
    )
    m_pro.add_argument(
        "--force", action="store_true",
        help="promote even a quarantined (rolled_back) version",
    )
    m_rb = modsub.add_parser(
        "rollback", help="quarantine production, reinstate last-known-good"
    )
    _registry_arg(m_rb)
    m_rb.add_argument(
        "--reason", default="manual rollback", help="recorded in the audit log"
    )
    m_gc = modsub.add_parser(
        "gc", help="delete old retired/rolled-back version directories"
    )
    _registry_arg(m_gc)
    m_gc.add_argument(
        "--keep", type=int, default=2, metavar="N",
        help="newest retired/rolled-back versions to keep on disk",
    )
    for p in (m_list, m_reg, m_pro, m_rb, m_gc):
        _add_telemetry_arg(p)

    met = sub.add_parser(
        "metrics", help="summarize a telemetry directory (events + metrics)"
    )
    met.add_argument(
        "directory", help="telemetry directory written via --telemetry"
    )
    met.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="also render the last N events human-readably",
    )
    met.add_argument(
        "--prometheus", action="store_true",
        help="emit the metrics snapshot in Prometheus text exposition "
        "format instead of the human report",
    )
    met.add_argument(
        "--validate", action="store_true",
        help="check every event line against the schema first "
        "(exit 2 on any violation)",
    )

    tr = sub.add_parser(
        "trace", help="analyze request traces recorded by serve --trace"
    )
    tr.add_argument(
        "directory", help="telemetry directory written via --telemetry --trace"
    )
    tr.add_argument(
        "--validate", action="store_true",
        help="structurally check every span record first "
        "(exit 2 on any violation)",
    )
    tr.add_argument(
        "--request", default=None, metavar="ID",
        help="render only the trace of this request id",
    )
    tr.add_argument(
        "--waterfalls", type=int, default=3, metavar="N",
        help="render the N slowest request waterfalls (default 3)",
    )
    return parser


def _resume_path(args: argparse.Namespace) -> str | None:
    if not args.resume:
        return None
    if args.checkpoint is None:
        raise ValueError("--resume requires --checkpoint")
    return args.checkpoint


def _cmd_build(args: argparse.Namespace) -> int:
    from .survey.imaging import ImagingConfig

    extras: dict[str, object] = {}
    if args.stamp_size is not None:
        extras["imaging"] = ImagingConfig(stamp_size=args.stamp_size)
    if args.catalog_size is not None:
        extras["catalog_size"] = args.catalog_size
    config = BuildConfig(
        n_ia=args.n_ia,
        n_non_ia=args.n_non_ia,
        seed=args.seed,
        render_images=not args.no_images,
        workers=args.workers,
        **extras,
    )
    if args.resume and args.checkpoint is None:
        raise ValueError("--resume requires --checkpoint")
    start = time.time()
    builder = DatasetBuilder(config)
    dataset = builder.build(
        verbose=True,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
        resume=args.resume,
    )
    save_dataset(dataset, args.out)
    report = builder.report
    if args.report is not None and report is not None:
        with open(args.report, "w") as handle:
            handle.write(report.to_json())
    if report is not None and report.n_quarantined:
        _note(
            f"{report.summary()} (see --report for quarantined samples)",
            event="build.report", level="warning",
            n_quarantined=report.n_quarantined,
        )
    _note(
        f"{dataset.summary()} written to {args.out} in {time.time() - start:.1f}s",
        event="build.saved", out=args.out,
        elapsed_s=round(time.time() - start, 3),
    )
    return 0


def _cmd_train_cnn(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    if dataset.stamp_size < args.input_size:
        print(
            f"error: dataset stamps are {dataset.stamp_size}px, smaller than "
            f"--input-size {args.input_size}",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT
    splits = train_val_test_split(dataset, seed=args.seed)
    x_train, y_train, m_train = splits.train.flux_pairs(min_flux=2.0)
    x_val, y_val, m_val = splits.val.flux_pairs(min_flux=2.0)
    cnn = BandwiseCNN(input_size=args.input_size, rng=np.random.default_rng(args.seed))
    history = fit_regressor(
        cnn,
        x_train[m_train],
        y_train[m_train],
        TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            seed=args.seed,
            early_stopping_patience=5,
            verbose=True,
        ),
        x_val[m_val],
        y_val[m_val],
        augment_fn=make_pair_augmenter(args.input_size),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=_resume_path(args),
    )
    save_module(cnn, args.out)
    _note(
        f"best val loss {history.best_val_loss:.4f}; weights written to {args.out}",
        event="train.saved", out=args.out,
        best_val_loss=history.best_val_loss,
    )
    return 0


def _cmd_train_classifier(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    splits = train_val_test_split(dataset, seed=args.seed)
    x_train, y_train = dataset_windowed_features(splits.train, args.epochs_used)
    x_val, y_val = dataset_windowed_features(splits.val, args.epochs_used)
    clf = LightCurveClassifier(
        input_dim=x_train.shape[1], units=args.units, rng=np.random.default_rng(args.seed)
    )
    history = fit_classifier(
        clf,
        x_train,
        y_train,
        TrainConfig(
            epochs=args.epochs, batch_size=128, seed=args.seed,
            early_stopping_patience=8, verbose=True,
        ),
        x_val,
        y_val,
        metric=auc_score,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=_resume_path(args),
    )
    save_module(clf, args.out)
    best = max(history.val_metric) if history.val_metric else float("nan")
    _note(
        f"best val AUC {best:.3f}; weights written to {args.out}",
        event="train.saved", out=args.out, best_val_auc=best,
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    splits = train_val_test_split(dataset, seed=0)
    x_test, y_test = dataset_windowed_features(splits.test, args.epochs_used)
    clf = LightCurveClassifier(input_dim=x_test.shape[1], units=args.units)
    load_module(clf, args.classifier)
    scores = clf.predict_proba(x_test)
    curve = roc_curve(y_test, scores)
    print(f"test AUC: {curve.auc:.3f}")
    for fpr in (0.05, 0.1, 0.2):
        print(f"  TPR at FPR={fpr:.2f}: {curve.tpr_at_fpr(fpr):.3f}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from .serve import InferenceEngine

    dataset = load_dataset(args.dataset, require_finite=args.strict)
    n_degraded = 0
    confidences = []
    sink = open(args.out, "w") if args.out else sys.stdout
    pool = None
    if args.mp:
        from .serve import PoolConfig, ScoringPool

        pool = ScoringPool(
            model_source=args.model,
            config=PoolConfig(workers=max(1, args.workers)),
            engine_kwargs={"strict": args.strict},
        ).start()
        stream = pool.stream(
            dataset, batch_size=args.batch_size, strict=args.strict
        )
    else:
        engine = InferenceEngine.from_directory(args.model)
        stream = engine.stream(
            dataset,
            batch_size=args.batch_size,
            strict=args.strict,
            workers=args.workers,
            # Thread tasks amortize GEMM setup over at least 32 samples
            # even when --batch-size streams finer-grained.
            min_task_size=32 if args.workers > 1 else None,
        )
    try:
        for result in stream:
            n_degraded += result.degraded
            confidences.append(result.confidence)
            print(result.to_json(), file=sink, flush=args.out is None)
    finally:
        if pool is not None:
            pool.close()
        if args.out:
            sink.close()
    if confidences:
        summary = (
            f"served {len(confidences)} sample(s), {n_degraded} degraded, "
            f"mean confidence {float(np.mean(confidences)):.3f}"
        )
    else:
        summary = "served 0 samples"
    # The serving summary always lands on stderr (tests and operators
    # rely on it); with telemetry on it is additionally recorded as the
    # terminal serve event.
    print(summary, file=sys.stderr)
    session = obs.active()
    if session is not None:
        session.emit(
            "serve.summary",
            message=summary,
            n_served=len(confidences),
            n_degraded=n_degraded,
            mean_confidence=float(np.mean(confidences)) if confidences else None,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .registry import GuardConfig, ModelRegistry
    from .serve import DaemonConfig, InferenceEngine, ServingDaemon

    if (args.model is None) == (args.registry is None):
        raise ValueError("pass exactly one of --model or --registry")
    latency_buckets = None
    if args.latency_buckets_ms is not None:
        try:
            latency_buckets = tuple(
                float(part) for part in args.latency_buckets_ms.split(",") if part.strip()
            )
        except ValueError:
            raise ValueError(
                f"--latency-buckets-ms must be comma-separated numbers, "
                f"got {args.latency_buckets_ms!r}"
            )
    config = DaemonConfig(
        host=args.host,
        port=args.port,
        batch_max_size=args.batch_max_size,
        batch_deadline_ms=args.batch_deadline_ms,
        queue_depth=args.queue_depth,
        request_deadline_ms=args.request_deadline_ms,
        wedge_timeout_s=args.wedge_timeout_s,
        strict=args.strict,
        reload_poll_s=args.reload_poll_s,
        scoring_workers=args.scoring_workers,
        latency_buckets_ms=latency_buckets,
    )
    if args.registry is not None:
        daemon = ServingDaemon(
            None,
            config,
            registry=ModelRegistry(args.registry),
            guard=GuardConfig(
                divergence_budget=args.divergence_budget,
                sustained_checks=args.sustained_drift_checks,
            ),
            engine_kwargs={"precision": args.precision},
        )
        model_source = f"registry {args.registry} ({daemon._engine_version})"
    else:
        engine = InferenceEngine.from_directory(args.model, precision=args.precision)
        daemon = ServingDaemon(engine, config)
        model_source = args.model
    daemon.start()
    # Handlers must be live before the listening line is printed: a
    # supervisor may SIGTERM the moment it has parsed the port, and the
    # default disposition would kill the process instead of draining.
    daemon.install_signal_handlers()
    # The listening line always lands on stderr (machine-parsable, port 0
    # included) so supervisors and the drain test can find the bound port;
    # with telemetry on it is additionally a serve.listening event.
    print(f"serving on {args.host}:{daemon.port}", file=sys.stderr, flush=True)
    _note(
        f"model {model_source} warm; SIGTERM drains gracefully",
        event="serve.ready", model=model_source, port=daemon.port,
    )
    code = daemon.wait()
    if code == 4:
        print(
            "error: scoring restart budget exhausted; drained",
            file=sys.stderr,
        )
    return code


def _cmd_models(args: argparse.Namespace) -> int:
    """Registry management: list / register / promote / rollback / gc.

    Machine-readable results (the new version name, the JSON state) go
    to stdout; human progress notes go through :func:`_note` (stderr, or
    structured events with ``--telemetry``).
    """
    import json as _json

    from .registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    command = args.models_command
    if command == "list":
        if args.json:
            print(_json.dumps(registry.state(), indent=2))
            return 0
        records = registry.records()
        if not records:
            print("registry is empty", file=sys.stderr)
            return 0
        state = registry.state()
        for version, record in records:
            marker = "*" if version == state.get("production") else (
                "~" if version == state.get("candidate") else " "
            )
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(record.get("created_at", 0))
            )
            note = record.get("note") or ""
            removed = " (gc'd)" if record.get("removed") else ""
            reason = record.get("reason")
            detail = f"  [{reason}]" if reason else (f"  {note}" if note else "")
            print(f"{marker} {version:>4}  {record['status']:<12} {stamp}{removed}{detail}")
        return 0
    if command == "register":
        if args.promote and args.shadow:
            raise ValueError("pass at most one of --promote / --shadow")
        version = registry.register(args.model, note=args.note, by="cli")
        _note(
            f"registered {args.model} as {version}",
            event="models.registered", version=version, model=args.model,
        )
        if args.promote:
            registry.promote(version, by="cli")
            _note(f"promoted {version} to production",
                  event="models.promoted", version=version)
        elif args.shadow:
            registry.shadow(version, by="cli")
            _note(f"staged {version} as shadow candidate",
                  event="models.shadowed", version=version)
        print(version)
        return 0
    if command == "promote":
        if args.shadow:
            registry.shadow(args.version, by="cli")
            _note(f"staged {args.version} as shadow candidate",
                  event="models.shadowed", version=args.version)
        else:
            demoted, promoted = registry.promote(
                args.version, force=args.force, by="cli"
            )
            suffix = f" (demoted {demoted})" if demoted else ""
            _note(f"promoted {promoted} to production{suffix}",
                  event="models.promoted", version=promoted, demoted=demoted)
        return 0
    if command == "rollback":
        quarantined, restored = registry.rollback(reason=args.reason, by="cli")
        _note(
            f"rolled back {quarantined} -> {restored} ({args.reason})",
            event="models.rolled_back", version=quarantined, restored=restored,
            reason=args.reason,
        )
        return 0
    if command == "gc":
        removed = registry.gc(keep=args.keep, by="cli")
        _note(
            f"removed {len(removed)} version dir(s): {', '.join(removed) or 'none'}",
            event="models.gc", removed=removed, keep=args.keep,
        )
        return 0
    raise ValueError(f"unknown models command {command!r}")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import SCHEMA_VERSION, validate_file
    from .obs.log import EVENTS_FILE
    from .obs.report import (
        format_event,
        prometheus_report,
        summarize_directory,
        tail_events,
    )

    if args.validate:
        events_path = os.path.join(args.directory, EVENTS_FILE)
        if not os.path.exists(events_path):
            print(f"error: no {EVENTS_FILE} in {args.directory}", file=sys.stderr)
            return EXIT_BAD_INPUT
        n_events, errors = validate_file(events_path)
        if errors:
            for err in errors[:20]:
                print(f"error: {err}", file=sys.stderr)
            if len(errors) > 20:
                print(f"error: ... and {len(errors) - 20} more", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(f"validated {n_events} event(s) against schema v{SCHEMA_VERSION}")
    if args.prometheus:
        sys.stdout.write(prometheus_report(args.directory))
        return 0
    sys.stdout.write(summarize_directory(args.directory))
    if args.tail > 0:
        records = tail_events(args.directory, args.tail)
        if records:
            print(f"\nlast {len(records)} event(s):")
            for record in records:
                print(f"  {format_event(record)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render the trace analysis over a telemetry directory.

    Three views, in order: the per-stage latency table (p50/p99 over
    every span of each name), waterfalls of the slowest requests, and
    the aggregated critical-path breakdown (the dominant stage chain
    per request).  ``--validate`` structurally checks every span record
    first and exits 2 on any violation.
    """
    from .obs import trace as trace_mod

    if not os.path.isdir(args.directory):
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return EXIT_BAD_INPUT
    spans = trace_mod.load_spans(args.directory)
    if args.validate:
        errors = trace_mod.validate_spans(spans)
        if errors:
            for err in errors[:20]:
                print(f"error: {err}", file=sys.stderr)
            if len(errors) > 20:
                print(f"error: ... and {len(errors) - 20} more", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(f"validated {len(spans)} span record(s)")
    if not spans:
        print(
            "no span records found (run `repro serve --telemetry DIR --trace`)",
            file=sys.stderr,
        )
        return 0
    trees = trace_mod.build_trees(spans)
    if args.request is not None:
        trees = [t for t in trees if t.get("request_id") == args.request]
        if not trees:
            print(f"error: no trace for request {args.request!r}", file=sys.stderr)
            return EXIT_BAD_INPUT
    print(f"{len(spans)} span(s) across {len(trees)} trace(s)")
    print()
    print("per-stage latency:")
    print(
        f"  {'stage':<26} {'count':>6} {'p50 ms':>9} {'p99 ms':>9} {'total s':>9}"
    )
    for row in trace_mod.stage_table(spans):
        print(
            f"  {row['stage']:<26} {row['count']:>6} {row['p50_ms']:>9.3f} "
            f"{row['p99_ms']:>9.3f} {row['total_s']:>9.3f}"
        )
    print()
    for tree in trees[: max(0, args.waterfalls)]:
        for line in trace_mod.render_waterfall(tree):
            print(line)
        print()
    path_rows = trace_mod.critical_paths(trees)
    if path_rows:
        print("critical paths:")
        for row in path_rows:
            print(
                f"  {row['count']:>5}x  {row['path']}  "
                f"(leaf {row['mean_leaf_ms']:.1f}ms, "
                f"{row['mean_fraction'] * 100.0:.0f}% of request)"
            )
    return 0


_COMMANDS = {
    "build-dataset": _cmd_build,
    "train-flux-cnn": _cmd_train_cnn,
    "train-classifier": _cmd_train_classifier,
    "evaluate": _cmd_evaluate,
    "classify": _cmd_classify,
    "serve": _cmd_serve,
    "models": _cmd_models,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Structured runtime failures are reported as one-line ``error:``
    messages on stderr instead of tracebacks: bad or missing inputs exit
    with ``2``, corrupt artifacts with ``3``, diverged training with
    ``4``.  With ``--telemetry DIR`` the same failures additionally
    leave a terminal ``cli.error`` event (carrying the exit code and,
    for strict-mode serving refusals, the failing sample's index and
    request id) before the session closes.
    """
    args = build_parser().parse_args(argv)
    telemetry_dir = getattr(args, "telemetry", None)
    trace_spec = getattr(args, "trace", None)
    if trace_spec is not None and not telemetry_dir:
        print("error: --trace requires --telemetry DIR", file=sys.stderr)
        return EXIT_BAD_INPUT
    if telemetry_dir:
        try:
            obs.start(telemetry_dir, command=args.command, trace=trace_spec)
        except ValueError as exc:
            # A malformed --trace spec must not leave a half-open session.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INPUT
    code: int | None = None  # None = a non-CLI exception escaped
    try:
        try:
            code = _COMMANDS[args.command](args)
        except CorruptArtifactError as exc:
            code = _fail(exc, EXIT_CORRUPT_ARTIFACT)
        except TrainingDiverged as exc:
            code = _fail(exc, EXIT_DIVERGED, prefix="error: training diverged: ")
        except BuildAborted as exc:
            code = _fail(exc, EXIT_BAD_INPUT, prefix="error: dataset build aborted: ")
        except RegistryError as exc:
            # Invalid registry operations (unknown version, quarantined
            # promote without --force, nothing to roll back to) are the
            # caller's fault, not corruption.
            code = _fail(exc, EXIT_BAD_INPUT)
        except OSError as exc:
            # FileNotFoundError / PermissionError / IsADirectoryError on inputs
            code = _fail(exc, EXIT_BAD_INPUT)
        except (ValueError, KeyError) as exc:
            code = _fail(exc, EXIT_BAD_INPUT)
        return code
    finally:
        if telemetry_dir and obs.active() is not None:
            obs.stop(
                status="ok" if code == 0 else "error",
                exit_code=-1 if code is None else code,
            )


if __name__ == "__main__":
    sys.exit(main())
