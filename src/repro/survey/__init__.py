"""Observation simulation substrate: PSFs, galaxies, noise, scheduling,
imaging and PSF-matched differencing."""

from .artifacts import (
    inject_cosmic_ray,
    inject_dipole,
    inject_hot_pixel,
    make_bogus_stamp,
)
from .coadd import CoaddResult, coadd_exposures
from .conditions import ConditionsModel, NightConditions
from .detection import Detection, detect_transients, snr_map
from .differencing import (
    DifferenceResult,
    difference_images,
    fit_matching_kernel,
    gaussian_matching_kernel,
)
from .galaxy import render_galaxy, render_sersic, sersic_b
from .imaging import Exposure, ImagingConfig, StampSimulator
from .noise import NoiseModel, sky_counts_per_pixel
from .psf import GaussianPSF, MoffatPSF, fwhm_to_sigma, sigma_to_fwhm
from .scheduling import ObservationPlan, ScheduledVisit, SurveyScheduler
from .wcs import TanWCS

__all__ = [
    "inject_cosmic_ray",
    "inject_dipole",
    "inject_hot_pixel",
    "make_bogus_stamp",
    "Detection",
    "detect_transients",
    "snr_map",
    "CoaddResult",
    "coadd_exposures",
    "ConditionsModel",
    "NightConditions",
    "DifferenceResult",
    "difference_images",
    "fit_matching_kernel",
    "gaussian_matching_kernel",
    "render_galaxy",
    "render_sersic",
    "sersic_b",
    "Exposure",
    "ImagingConfig",
    "StampSimulator",
    "NoiseModel",
    "sky_counts_per_pixel",
    "GaussianPSF",
    "MoffatPSF",
    "fwhm_to_sigma",
    "sigma_to_fwhm",
    "ObservationPlan",
    "ScheduledVisit",
    "SurveyScheduler",
    "TanWCS",
]
