"""Detector and sky noise model.

Each simulated exposure carries the three standard noise sources:

* **sky background** — a flat pedestal set by the band's sky surface
  brightness and the night's transparency, with Poisson fluctuations;
* **source shot noise** — Poisson fluctuations of astrophysical counts;
* **read noise** — Gaussian electronics noise per pixel.

Counts are in the zero-point-27 system of :mod:`repro.photometry`; an
``exposure_factor`` rescales the effective depth (larger = deeper, the
knob used to emulate the paper's co-added reference images).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..photometry import Band, mag_to_flux

__all__ = ["NoiseModel", "sky_counts_per_pixel"]


def sky_counts_per_pixel(band: Band, pixel_scale: float, transparency: float = 1.0) -> float:
    """Sky background counts in one pixel.

    Converts the band's sky surface brightness (mag/arcsec^2) to counts
    through the pixel solid angle.  Lower transparency dims source flux
    but the sky pedestal stays, so it is *not* scaled by transparency.
    """
    if pixel_scale <= 0:
        raise ValueError("pixel_scale must be positive")
    if not 0 < transparency <= 1:
        raise ValueError("transparency must be in (0, 1]")
    pixel_area = pixel_scale**2
    return float(mag_to_flux(band.sky_mag_arcsec2) * pixel_area)


@dataclass(frozen=True)
class NoiseModel:
    """Noise generator for simulated exposures.

    Parameters
    ----------
    read_noise:
        Gaussian read noise per pixel, in counts.
    exposure_factor:
        Effective exposure depth multiplier.  Signal and sky scale with
        it; the stored image is divided back so calibrated counts keep the
        same zero-point, which means noise *per calibrated count* shrinks
        as ``1/sqrt(exposure_factor)``.
    gain:
        Counts per photo-electron (Poisson statistics apply to electrons).
    """

    read_noise: float = 1.5
    exposure_factor: float = 60.0
    gain: float = 1.0

    def __post_init__(self) -> None:
        if self.read_noise < 0:
            raise ValueError("read_noise must be non-negative")
        if self.exposure_factor <= 0:
            raise ValueError("exposure_factor must be positive")
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    def realise(
        self,
        signal: np.ndarray,
        band: Band,
        pixel_scale: float,
        rng: np.random.Generator,
        transparency: float = 1.0,
        depth_boost: float = 1.0,
    ) -> np.ndarray:
        """Add noise to a clean ``signal`` image and sky-subtract.

        Returns a calibrated, sky-subtracted image: the expectation equals
        ``signal * transparency / transparency = signal`` (the simulator
        divides out transparency exactly as survey calibration would),
        with realistic pixel noise.

        Parameters
        ----------
        signal:
            Clean astrophysical counts (galaxy + supernova).
        depth_boost:
            Extra depth multiplier for this exposure (e.g. reference
            co-adds use > 1).
        """
        if np.any(signal < 0):
            raise ValueError("signal must be non-negative")
        depth = self.exposure_factor * depth_boost
        sky = sky_counts_per_pixel(band, pixel_scale)
        expected_electrons = (signal * transparency + sky) * depth / self.gain
        observed = rng.poisson(expected_electrons).astype(np.float64) * self.gain
        observed += rng.normal(0.0, self.read_noise, size=signal.shape)
        # Calibration: subtract the (known) sky, undo depth and transparency.
        calibrated = (observed - sky * depth) / (depth * transparency)
        return calibrated

    def pixel_sigma(
        self,
        band: Band,
        pixel_scale: float,
        transparency: float = 1.0,
        depth_boost: float = 1.0,
    ) -> float:
        """Standard deviation of a blank calibrated pixel (sky + read)."""
        depth = self.exposure_factor * depth_boost
        sky = sky_counts_per_pixel(band, pixel_scale)
        variance_counts = sky * depth * self.gain + self.read_noise**2
        return float(np.sqrt(variance_counts) / (depth * transparency))
