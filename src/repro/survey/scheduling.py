"""Survey observation scheduling.

Broad-band photometric surveys fix their filter schedule in advance
(Section 3): the paper's dataset gives every band exactly four epochs,
with at most two different bands observed on the same night.  The
:class:`SurveyScheduler` generates such plans over a configurable window
with a regular revisit cadence.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..photometry import GRIZY, Band

__all__ = ["ScheduledVisit", "ObservationPlan", "SurveyScheduler"]


@dataclass(frozen=True)
class ScheduledVisit:
    """One scheduled exposure: a band on a night."""

    mjd: float
    band: Band

    def __repr__(self) -> str:
        return f"Visit({self.band.name}@{self.mjd:.1f})"


@dataclass(frozen=True)
class ObservationPlan:
    """An ordered collection of scheduled visits.

    Provides the per-band views that the dataset builder and the
    single-epoch splitting logic need.
    """

    visits: tuple[ScheduledVisit, ...]

    def __post_init__(self) -> None:
        if not self.visits:
            raise ValueError("a plan needs at least one visit")
        mjds = [v.mjd for v in self.visits]
        if mjds != sorted(mjds):
            raise ValueError("visits must be in chronological order")

    def __len__(self) -> int:
        return len(self.visits)

    def __iter__(self):
        return iter(self.visits)

    @property
    def start_mjd(self) -> float:
        return self.visits[0].mjd

    @property
    def end_mjd(self) -> float:
        return self.visits[-1].mjd

    def for_band(self, band: Band) -> tuple[ScheduledVisit, ...]:
        """Visits of one band, chronological."""
        return tuple(v for v in self.visits if v.band == band)

    def epochs_per_band(self) -> dict[str, int]:
        """Visit counts keyed by band name."""
        counts = Counter(v.band.name for v in self.visits)
        return dict(counts)

    def bands_per_night(self) -> dict[float, int]:
        """Distinct bands observed on each night."""
        nightly: dict[float, set[str]] = {}
        for visit in self.visits:
            nightly.setdefault(visit.mjd, set()).add(visit.band.name)
        return {mjd: len(bands) for mjd, bands in nightly.items()}

    def epoch_groups(self) -> list[tuple[ScheduledVisit, ...]]:
        """Group visits into epochs: the k-th visit of every band.

        The paper splits each sample into 4 single-epoch subsets, each
        containing one visit per band; this returns those groups.
        """
        per_band = {band: list(self.for_band(band)) for band in GRIZY}
        n_epochs = min(len(v) for v in per_band.values())
        return [
            tuple(per_band[band][k] for band in GRIZY)
            for k in range(n_epochs)
        ]


class SurveyScheduler:
    """Generate observation plans with the paper's constraints.

    Parameters
    ----------
    epochs_per_band:
        Number of visits for every band (paper: 4).
    max_bands_per_night:
        At most this many distinct bands share a night (paper: 2).
    cadence_days:
        Mean revisit interval between successive observing nights.
    cadence_jitter:
        Uniform jitter applied to each interval, in days.
    bands:
        Filter set; defaults to the five survey bands.
    """

    def __init__(
        self,
        epochs_per_band: int = 4,
        max_bands_per_night: int = 2,
        cadence_days: float = 6.0,
        cadence_jitter: float = 2.0,
        bands: tuple[Band, ...] = GRIZY,
    ) -> None:
        if epochs_per_band <= 0:
            raise ValueError("epochs_per_band must be positive")
        if not 1 <= max_bands_per_night <= len(bands):
            raise ValueError("max_bands_per_night out of range")
        if cadence_days <= 0:
            raise ValueError("cadence_days must be positive")
        if not 0 <= cadence_jitter < cadence_days:
            raise ValueError("cadence_jitter must be in [0, cadence_days)")
        self.epochs_per_band = epochs_per_band
        self.max_bands_per_night = max_bands_per_night
        self.cadence_days = cadence_days
        self.cadence_jitter = cadence_jitter
        self.bands = bands

    def generate(self, start_mjd: float, rng: np.random.Generator) -> ObservationPlan:
        """Build a plan starting near ``start_mjd``.

        Bands are dealt onto nights round-robin, ``max_bands_per_night``
        at a time, repeating until every band has its quota; nights are
        spaced by the jittered cadence.
        """
        # Sequence of band visits: epoch 0 for all bands, epoch 1, ...
        queue: list[Band] = []
        for _ in range(self.epochs_per_band):
            order = list(self.bands)
            rng.shuffle(order)
            queue.extend(order)

        visits: list[ScheduledVisit] = []
        mjd = float(start_mjd)
        cursor = 0
        while cursor < len(queue):
            tonight = queue[cursor : cursor + self.max_bands_per_night]
            # A night must not repeat a band.
            names = [b.name for b in tonight]
            if len(set(names)) != len(names):
                tonight = tonight[:1]
            for band in tonight:
                visits.append(ScheduledVisit(mjd=mjd, band=band))
            cursor += len(tonight)
            mjd += self.cadence_days + rng.uniform(-self.cadence_jitter, self.cadence_jitter)
        return ObservationPlan(visits=tuple(visits))

    def sample_peak_mjd(self, plan: ObservationPlan, rng: np.random.Generator) -> float:
        """Choose a supernova peak date visible inside the plan.

        The paper fixes schedules first, then sets the explosion date so
        the light curve overlaps the observations; we draw the peak
        uniformly over the plan span, slightly padded so some epochs land
        before and after maximum.
        """
        return float(rng.uniform(plan.start_mjd - 5.0, plan.end_mjd - 10.0))
