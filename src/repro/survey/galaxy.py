"""Galaxy light-profile rendering.

Hosts are rendered as elliptical Sersic profiles — the standard
parametric description of galaxy light — scaled to the catalogue's
apparent magnitude and convolved with the night's PSF by the imaging
pipeline.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincinv

from ..catalog import Galaxy
from ..photometry import mag_to_flux

__all__ = ["sersic_b", "render_sersic", "render_galaxy"]


def sersic_b(n: float) -> float:
    """Exact Sersic normalisation constant b_n.

    Defined by Gamma(2n) = 2 gamma(2n, b_n) so the effective radius
    encloses half the light; computed with the inverse incomplete gamma.
    """
    if n <= 0:
        raise ValueError("Sersic index must be positive")
    return float(gammaincinv(2.0 * n, 0.5))


def render_sersic(
    shape: tuple[int, int],
    center: tuple[float, float],
    total_flux: float,
    half_light_radius_px: float,
    sersic_index: float,
    ellipticity: float = 0.0,
    position_angle: float = 0.0,
    oversample: int = 3,
) -> np.ndarray:
    """Render an elliptical Sersic profile on a pixel grid.

    Parameters
    ----------
    shape:
        (height, width) of the stamp.
    center:
        (row, col) sub-pixel centre.
    total_flux:
        Total counts integrated over the (infinite) profile; the rendered
        stamp is normalised so *its* sum equals the flux that falls within
        it, by evaluating the profile and scaling to the analytic total.
    half_light_radius_px:
        Effective radius along the major axis, in pixels.
    sersic_index:
        Concentration n (0.5 Gaussian-like, 1 exponential disk, 4 de
        Vaucouleurs bulge).
    ellipticity:
        1 - b/a.
    position_angle:
        Major-axis angle in radians, measured from the +col axis.
    oversample:
        Sub-pixel sampling factor; Sersic cores are cuspy for large n so
        centre pixels need oversampling for accurate totals.
    """
    if total_flux < 0:
        raise ValueError("total_flux must be non-negative")
    if half_light_radius_px <= 0:
        raise ValueError("half_light_radius_px must be positive")
    if not 0 <= ellipticity < 1:
        raise ValueError("ellipticity must be in [0, 1)")
    if oversample < 1:
        raise ValueError("oversample must be >= 1")

    height, width = shape
    b_n = sersic_b(sersic_index)
    axis_ratio = 1.0 - ellipticity

    # Oversampled pixel-centre coordinates.
    step = 1.0 / oversample
    offs = (np.arange(oversample) + 0.5) * step - 0.5
    rows = (np.arange(height)[:, None] + offs[None, :]).reshape(-1) - center[0]
    cols = (np.arange(width)[:, None] + offs[None, :]).reshape(-1) - center[1]
    rr, cc = np.meshgrid(rows, cols, indexing="ij")

    cos_pa, sin_pa = np.cos(position_angle), np.sin(position_angle)
    # Rotate into the ellipse frame (major axis along x).
    x_maj = cc * cos_pa + rr * sin_pa
    y_min = -cc * sin_pa + rr * cos_pa
    radius = np.sqrt(x_maj**2 + (y_min / axis_ratio) ** 2)

    profile = np.exp(-b_n * ((radius / half_light_radius_px) ** (1.0 / sersic_index) - 1.0))
    # Downsample back to the pixel grid.
    profile = profile.reshape(height, oversample, width, oversample).mean(axis=(1, 3))

    # Analytic total of the elliptical Sersic profile (infinite plane):
    # L = 2 pi n q Re^2 e^{b} b^{-2n} Gamma(2n) * I_e ; with I_e = 1 here.
    from scipy.special import gamma as gamma_fn

    total_analytic = (
        2.0
        * np.pi
        * sersic_index
        * axis_ratio
        * half_light_radius_px**2
        * np.exp(b_n)
        * b_n ** (-2.0 * sersic_index)
        * gamma_fn(2.0 * sersic_index)
    )
    return profile * (total_flux / total_analytic)


def render_galaxy(
    galaxy: Galaxy,
    shape: tuple[int, int],
    center: tuple[float, float],
    pixel_scale: float = 0.17,
    oversample: int = 3,
) -> np.ndarray:
    """Render a catalogue galaxy in counts (zero-point-27 system)."""
    return render_sersic(
        shape=shape,
        center=center,
        total_flux=mag_to_flux(galaxy.magnitude_i),
        half_light_radius_px=galaxy.half_light_radius / pixel_scale,
        sersic_index=galaxy.sersic_index,
        ellipticity=galaxy.ellipticity,
        position_angle=galaxy.position_angle,
        oversample=oversample,
    )
