"""Point-spread functions.

Every image in the simulated survey is blurred by atmospheric seeing.
Supernovae are point sources, so the PSF *is* their image; galaxies are
convolved with it.  Two standard profiles are provided — Gaussian and
Moffat (the better model for atmospheric wings) — both renderable at
sub-pixel centres on a stamp grid.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianPSF", "MoffatPSF", "fwhm_to_sigma", "sigma_to_fwhm"]

_FWHM_FACTOR = 2.0 * np.sqrt(2.0 * np.log(2.0))


def fwhm_to_sigma(fwhm: float) -> float:
    """Convert a Gaussian FWHM to its standard deviation."""
    if fwhm <= 0:
        raise ValueError("FWHM must be positive")
    return fwhm / _FWHM_FACTOR


def sigma_to_fwhm(sigma: float) -> float:
    """Convert a Gaussian standard deviation to its FWHM."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return sigma * _FWHM_FACTOR


class GaussianPSF:
    """Circular Gaussian PSF.

    Parameters
    ----------
    fwhm:
        Full width at half maximum in arcseconds.
    pixel_scale:
        Arcseconds per pixel of the detector.
    """

    def __init__(self, fwhm: float, pixel_scale: float = 0.17) -> None:
        if fwhm <= 0 or pixel_scale <= 0:
            raise ValueError("fwhm and pixel_scale must be positive")
        self.fwhm = fwhm
        self.pixel_scale = pixel_scale
        self.sigma_pixels = fwhm_to_sigma(fwhm) / pixel_scale

    def render(self, shape: tuple[int, int], center: tuple[float, float]) -> np.ndarray:
        """Render the PSF normalised to unit total flux on an infinite plane.

        Parameters
        ----------
        shape:
            (height, width) of the stamp in pixels.
        center:
            (row, col) sub-pixel centre of the source.
        """
        height, width = shape
        rows = np.arange(height)[:, None] - center[0]
        cols = np.arange(width)[None, :] - center[1]
        r2 = rows**2 + cols**2
        norm = 1.0 / (2.0 * np.pi * self.sigma_pixels**2)
        return norm * np.exp(-r2 / (2.0 * self.sigma_pixels**2))

    def __repr__(self) -> str:
        return f"GaussianPSF(fwhm={self.fwhm:.3f}\")"


class MoffatPSF:
    """Moffat PSF: ``I(r) ~ (1 + (r/alpha)^2)^-beta``.

    Heavier wings than a Gaussian; ``beta ~ 3`` is typical of ground-based
    seeing.  ``alpha`` is derived from the requested FWHM.
    """

    def __init__(self, fwhm: float, beta: float = 3.0, pixel_scale: float = 0.17) -> None:
        if fwhm <= 0 or pixel_scale <= 0:
            raise ValueError("fwhm and pixel_scale must be positive")
        if beta <= 1.0:
            raise ValueError("beta must exceed 1 for a normalisable profile")
        self.fwhm = fwhm
        self.beta = beta
        self.pixel_scale = pixel_scale
        fwhm_pixels = fwhm / pixel_scale
        self.alpha_pixels = fwhm_pixels / (2.0 * np.sqrt(2.0 ** (1.0 / beta) - 1.0))

    def render(self, shape: tuple[int, int], center: tuple[float, float]) -> np.ndarray:
        """Render the PSF normalised to unit total flux on an infinite plane."""
        height, width = shape
        rows = np.arange(height)[:, None] - center[0]
        cols = np.arange(width)[None, :] - center[1]
        r2 = (rows**2 + cols**2) / self.alpha_pixels**2
        norm = (self.beta - 1.0) / (np.pi * self.alpha_pixels**2)
        return norm * (1.0 + r2) ** (-self.beta)

    def __repr__(self) -> str:
        return f"MoffatPSF(fwhm={self.fwhm:.3f}\", beta={self.beta})"
