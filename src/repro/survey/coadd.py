"""Image co-addition.

Survey reference images are co-adds of many single-night exposures.
:class:`~repro.survey.imaging.StampSimulator` models the *result* of that
process with a depth boost; this module implements the process itself —
PSF-homogenise every exposure to the worst seeing in the stack, then
average with inverse-variance weights — so pipelines that want to build
references from simulated nightly data can do it faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .differencing import _convolve_same, gaussian_matching_kernel
from .psf import fwhm_to_sigma

__all__ = ["CoaddResult", "coadd_exposures"]


@dataclass(frozen=True)
class CoaddResult:
    """A stacked image with its effective properties.

    Attributes
    ----------
    pixels:
        Inverse-variance-weighted mean of the homogenised exposures.
    effective_fwhm:
        PSF FWHM of the stack (the worst input seeing).
    effective_noise:
        Predicted per-pixel noise of the stack.
    """

    pixels: np.ndarray
    effective_fwhm: float
    effective_noise: float


def coadd_exposures(
    images: list[np.ndarray],
    fwhms: list[float],
    pixel_noises: list[float],
    pixel_scale: float = 0.17,
) -> CoaddResult:
    """Stack calibrated exposures of the same field.

    Parameters
    ----------
    images:
        Sky-subtracted stamps, identical shapes.
    fwhms:
        Seeing FWHM (arcsec) of each exposure.
    pixel_noises:
        Per-pixel noise sigma of each exposure.

    Every image is convolved up to the worst seeing so the stack has a
    single well-defined PSF, then combined with weights 1/sigma^2.
    (Convolution correlates pixel noise; the returned ``effective_noise``
    uses the standard white-noise approximation and slightly
    overestimates the true post-convolution noise.)
    """
    if not images:
        raise ValueError("need at least one exposure")
    if not (len(images) == len(fwhms) == len(pixel_noises)):
        raise ValueError("images, fwhms and pixel_noises must align")
    shape = images[0].shape
    if any(img.shape != shape for img in images):
        raise ValueError("all exposures must share a shape")
    if any(f <= 0 for f in fwhms) or any(s <= 0 for s in pixel_noises):
        raise ValueError("fwhms and pixel noises must be positive")

    target_fwhm = max(fwhms)
    target_sigma = fwhm_to_sigma(target_fwhm) / pixel_scale

    weighted_sum = np.zeros(shape, dtype=float)
    weight_total = 0.0
    for image, fwhm, noise in zip(images, fwhms, pixel_noises):
        sigma = fwhm_to_sigma(fwhm) / pixel_scale
        if target_sigma - sigma > 1e-6:
            kernel = gaussian_matching_kernel(sigma, target_sigma, size=21)
            homogenised = _convolve_same(image, kernel)
        else:
            homogenised = image
        weight = 1.0 / noise**2
        weighted_sum += weight * homogenised
        weight_total += weight

    stacked = weighted_sum / weight_total
    effective_noise = float(np.sqrt(1.0 / weight_total))
    return CoaddResult(
        pixels=stacked, effective_fwhm=target_fwhm, effective_noise=effective_noise
    )
