"""Transient detection on difference images.

Step (2) of the paper's survey pipeline: "transient object candidates
are detected by subtracting the obtained image from a reference image".
Detection is a matched filter: the difference image is cross-correlated
with the PSF, normalised to a signal-to-noise map, and local maxima
above threshold become candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage, signal

__all__ = ["Detection", "snr_map", "detect_transients"]


@dataclass(frozen=True)
class Detection:
    """One transient candidate.

    Attributes
    ----------
    row, col:
        Pixel position of the SNR peak.
    snr:
        Matched-filter signal-to-noise ratio at the peak.
    flux:
        Matched-filter flux estimate at the peak.
    """

    row: int
    col: int
    snr: float
    flux: float


def snr_map(
    difference: np.ndarray, psf_kernel: np.ndarray, pixel_noise: float
) -> tuple[np.ndarray, np.ndarray]:
    """Matched-filter SNR and flux maps of a difference image.

    For a unit-flux PSF ``p`` and per-pixel noise ``sigma``, the optimal
    point-source flux estimate centred at each pixel is
    ``(d * p) / sum(p^2)`` (cross-correlation), with constant standard
    deviation ``sigma / sqrt(sum(p^2))``.

    Returns ``(snr, flux)`` maps of the input shape.
    """
    if pixel_noise <= 0:
        raise ValueError("pixel_noise must be positive")
    norm = float(np.sum(psf_kernel**2))
    if norm <= 0:
        raise ValueError("psf_kernel is identically zero")
    # Cross-correlation = convolution with the flipped kernel.
    correlated = signal.fftconvolve(difference, psf_kernel[::-1, ::-1], mode="same")
    flux = correlated / norm
    flux_sigma = pixel_noise / np.sqrt(norm)
    return flux / flux_sigma, flux


def detect_transients(
    difference: np.ndarray,
    psf_kernel: np.ndarray,
    pixel_noise: float,
    threshold: float = 5.0,
    min_separation: int = 3,
) -> list[Detection]:
    """Find significant point sources in a difference image.

    Parameters
    ----------
    threshold:
        Minimum matched-filter SNR (survey convention: 5 sigma).
    min_separation:
        Local-maximum window half-size in pixels; peaks closer than this
        merge into the brighter one.

    Returns detections sorted by decreasing SNR.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    snr, flux = snr_map(difference, psf_kernel, pixel_noise)
    # Local maxima via grey dilation.
    footprint = np.ones((2 * min_separation + 1, 2 * min_separation + 1))
    local_max = snr == ndimage.grey_dilation(snr, footprint=footprint)
    candidates = np.argwhere(local_max & (snr >= threshold))
    detections = [
        Detection(row=int(r), col=int(c), snr=float(snr[r, c]), flux=float(flux[r, c]))
        for r, c in candidates
    ]
    return sorted(detections, key=lambda d: -d.snr)
