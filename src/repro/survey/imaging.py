"""Stamp-level image simulation.

Produces the 65 x 65 cutouts of the paper's dataset: a host galaxy
(Sersic profile convolved with the night's PSF), an optional supernova
point source at its in-host position, realistic noise, and the deep
reference image used for differencing.

The supernova candidate sits at the stamp centre — difference-imaging
pipelines cut stamps around detections — and the host centre is offset
by the negative of the supernova's in-host offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from ..catalog import Galaxy, SupernovaPlacement
from ..photometry import Band
from .conditions import ConditionsModel, NightConditions
from .galaxy import render_galaxy
from .noise import NoiseModel
from .psf import GaussianPSF, MoffatPSF

__all__ = ["ImagingConfig", "Exposure", "StampSimulator"]

STAMP_SIZE_DEFAULT = 65


@dataclass(frozen=True)
class ImagingConfig:
    """Geometry and PSF family of the simulated camera.

    Parameters
    ----------
    stamp_size:
        Side length of the square cutout in pixels (paper: 65).
    pixel_scale:
        Arcseconds per pixel (HSC: 0.17).
    psf_family:
        ``'moffat'`` (realistic wings; Gaussian matching then leaves the
        paper's mis-subtraction residuals) or ``'gaussian'``.
    psf_kernel_size:
        Side length of the rendered convolution kernel.
    reference_depth_boost:
        Extra depth of the reference co-add relative to one exposure.
    """

    stamp_size: int = STAMP_SIZE_DEFAULT
    pixel_scale: float = 0.17
    psf_family: str = "moffat"
    psf_kernel_size: int = 31
    reference_depth_boost: float = 8.0

    def __post_init__(self) -> None:
        if self.stamp_size < 16 or self.stamp_size % 2 == 0:
            raise ValueError("stamp_size must be an odd number >= 17")
        if self.pixel_scale <= 0:
            raise ValueError("pixel_scale must be positive")
        if self.psf_family not in ("moffat", "gaussian"):
            raise ValueError(f"unknown psf_family {self.psf_family!r}")
        if self.psf_kernel_size % 2 == 0:
            raise ValueError("psf_kernel_size must be odd")
        if self.reference_depth_boost < 1:
            raise ValueError("reference_depth_boost must be >= 1")

    @property
    def center(self) -> float:
        """Sub-pixel coordinate of the stamp centre."""
        return (self.stamp_size - 1) / 2.0

    def make_psf(self, fwhm: float) -> GaussianPSF | MoffatPSF:
        """Instantiate the configured PSF family at a given seeing."""
        if self.psf_family == "moffat":
            return MoffatPSF(fwhm, pixel_scale=self.pixel_scale)
        return GaussianPSF(fwhm, pixel_scale=self.pixel_scale)


@dataclass(frozen=True)
class Exposure:
    """One calibrated stamp plus its provenance."""

    pixels: np.ndarray
    band: Band
    conditions: NightConditions
    true_sn_flux: float

    @property
    def mjd(self) -> float:
        return self.conditions.mjd


class StampSimulator:
    """Render observation and reference stamps for one supernova/host.

    Parameters
    ----------
    config:
        Camera geometry and PSF family.
    noise:
        Detector noise model.
    conditions:
        Per-night weather distribution.
    """

    def __init__(
        self,
        config: ImagingConfig | None = None,
        noise: NoiseModel | None = None,
        conditions: ConditionsModel | None = None,
    ) -> None:
        self.config = config or ImagingConfig()
        self.noise = noise or NoiseModel()
        self.conditions = conditions or ConditionsModel()

    # ------------------------------------------------------------------
    # Clean (noise-free) scene components
    # ------------------------------------------------------------------
    def _psf_kernel(self, fwhm: float) -> np.ndarray:
        size = self.config.psf_kernel_size
        center = (size - 1) / 2.0
        kernel = self.config.make_psf(fwhm).render((size, size), (center, center))
        return kernel / kernel.sum()

    def clean_scene(
        self,
        placement: SupernovaPlacement,
        sn_flux: float,
        seeing_fwhm: float,
    ) -> np.ndarray:
        """Noise-free stamp: PSF-convolved host plus the supernova.

        The supernova is at the stamp centre; the host centre is offset by
        minus the in-host supernova offset (converted to pixels).
        """
        if sn_flux < 0:
            raise ValueError("sn_flux must be non-negative")
        cfg = self.config
        shape = (cfg.stamp_size, cfg.stamp_size)
        host_row = cfg.center - placement.offset_y / cfg.pixel_scale
        host_col = cfg.center - placement.offset_x / cfg.pixel_scale
        galaxy = render_galaxy(
            placement.host, shape, (host_row, host_col), pixel_scale=cfg.pixel_scale
        )
        scene = signal.fftconvolve(galaxy, self._psf_kernel(seeing_fwhm), mode="same")
        if sn_flux > 0:
            psf = cfg.make_psf(seeing_fwhm)
            scene = scene + sn_flux * psf.render(shape, (cfg.center, cfg.center))
        return np.maximum(scene, 0.0)

    # ------------------------------------------------------------------
    # Noisy exposures
    # ------------------------------------------------------------------
    def observe(
        self,
        placement: SupernovaPlacement,
        band: Band,
        sn_flux: float,
        night: NightConditions,
        rng: np.random.Generator,
    ) -> Exposure:
        """Simulate one science exposure containing the supernova."""
        scene = self.clean_scene(placement, sn_flux, night.seeing_fwhm)
        pixels = self.noise.realise(
            scene, band, self.config.pixel_scale, rng, transparency=night.transparency
        )
        # Residual calibration error.
        pixels = pixels * 10 ** (-0.4 * night.zp_jitter_mag)
        return Exposure(
            pixels=pixels.astype(np.float32),
            band=band,
            conditions=night,
            true_sn_flux=float(sn_flux),
        )

    def reference(
        self,
        placement: SupernovaPlacement,
        band: Band,
        rng: np.random.Generator,
        mjd: float = 0.0,
    ) -> Exposure:
        """Simulate the deep supernova-free reference co-add."""
        night = self.conditions.best_conditions(mjd)
        scene = self.clean_scene(placement, 0.0, night.seeing_fwhm)
        pixels = self.noise.realise(
            scene,
            band,
            self.config.pixel_scale,
            rng,
            transparency=night.transparency,
            depth_boost=self.config.reference_depth_boost,
        )
        return Exposure(
            pixels=pixels.astype(np.float32),
            band=band,
            conditions=night,
            true_sn_flux=0.0,
        )
