"""World-coordinate-system geometry: gnomonic (TAN) projection.

Large-format survey images map sky coordinates to pixels through a WCS;
stamps are cut out of those frames ("A 65x65 region is cropped from
large format imaging data", Section 3).  This module implements the
standard gnomonic projection used by survey pipelines so catalogue
positions (RA/Dec) can be placed on a virtual full frame and cutout
geometry can be computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TanWCS"]


@dataclass(frozen=True)
class TanWCS:
    """A gnomonic (tangent-plane) projection with square pixels.

    Parameters
    ----------
    ra_center, dec_center:
        Projection tangent point in degrees.
    pixel_scale:
        Arcseconds per pixel.
    crpix:
        (x, y) pixel coordinates of the tangent point.
    """

    ra_center: float
    dec_center: float
    pixel_scale: float = 0.17
    crpix: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.pixel_scale <= 0:
            raise ValueError("pixel_scale must be positive")
        if not -90.0 < self.dec_center < 90.0:
            raise ValueError("dec_center must be inside (-90, 90)")

    # ------------------------------------------------------------------
    def sky_to_pixel(
        self, ra: float | np.ndarray, dec: float | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project sky coordinates (degrees) to pixel (x, y).

        x grows toward decreasing RA (astronomical convention: East left)
        and y toward increasing Dec.
        """
        ra_r = np.radians(np.asarray(ra, dtype=float))
        dec_r = np.radians(np.asarray(dec, dtype=float))
        ra0 = np.radians(self.ra_center)
        dec0 = np.radians(self.dec_center)

        cos_c = np.sin(dec0) * np.sin(dec_r) + np.cos(dec0) * np.cos(dec_r) * np.cos(
            ra_r - ra0
        )
        if np.any(cos_c <= 0):
            raise ValueError("position is more than 90 degrees from the tangent point")
        xi = np.cos(dec_r) * np.sin(ra_r - ra0) / cos_c
        eta = (
            np.cos(dec0) * np.sin(dec_r)
            - np.sin(dec0) * np.cos(dec_r) * np.cos(ra_r - ra0)
        ) / cos_c

        scale = np.degrees(1.0) * 3600.0 / self.pixel_scale  # radians -> pixels
        x = self.crpix[0] - xi * scale
        y = self.crpix[1] + eta * scale
        return x, y

    def pixel_to_sky(
        self, x: float | np.ndarray, y: float | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Invert :meth:`sky_to_pixel`; returns (ra, dec) in degrees."""
        scale = np.degrees(1.0) * 3600.0 / self.pixel_scale
        xi = (self.crpix[0] - np.asarray(x, dtype=float)) / scale
        eta = (np.asarray(y, dtype=float) - self.crpix[1]) / scale
        ra0 = np.radians(self.ra_center)
        dec0 = np.radians(self.dec_center)

        denom = np.cos(dec0) - eta * np.sin(dec0)
        ra = ra0 + np.arctan2(xi, denom)
        dec = np.arctan(
            np.cos(ra - ra0) * (np.sin(dec0) + eta * np.cos(dec0)) / denom
        )
        return np.degrees(ra), np.degrees(dec)

    def separation_pixels(
        self, ra1: float, dec1: float, ra2: float, dec2: float
    ) -> float:
        """Pixel-plane distance between two sky positions."""
        x1, y1 = self.sky_to_pixel(ra1, dec1)
        x2, y2 = self.sky_to_pixel(ra2, dec2)
        return float(np.hypot(x2 - x1, y2 - y1))

    def cutout_origin(
        self, ra: float, dec: float, stamp_size: int
    ) -> tuple[int, int]:
        """Integer (x0, y0) of a ``stamp_size`` cutout centred on a target."""
        x, y = self.sky_to_pixel(ra, dec)
        half = stamp_size // 2
        return int(np.round(float(x))) - half, int(np.round(float(y))) - half
