"""Per-night observing conditions.

The paper simulated "fluctuations in observation conditions such as
weathers by using the images of the same galaxy taken on different days"
(Section 3).  We model the same variability generatively: each night
draws a seeing FWHM (log-normal, as observed at Mauna Kea), an
atmospheric transparency and a small photometric zero-point jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NightConditions", "ConditionsModel"]


@dataclass(frozen=True)
class NightConditions:
    """Observing conditions for one night.

    Attributes
    ----------
    mjd:
        Night identifier (modified Julian date).
    seeing_fwhm:
        Delivered PSF FWHM in arcseconds.
    transparency:
        Fractional sky transparency in (0, 1].
    zp_jitter_mag:
        Residual photometric calibration error in magnitudes.
    """

    mjd: float
    seeing_fwhm: float
    transparency: float
    zp_jitter_mag: float

    def __post_init__(self) -> None:
        if self.seeing_fwhm <= 0:
            raise ValueError("seeing must be positive")
        if not 0 < self.transparency <= 1:
            raise ValueError("transparency must be in (0, 1]")


@dataclass(frozen=True)
class ConditionsModel:
    """Distribution of nightly conditions.

    Parameters
    ----------
    median_seeing:
        Median seeing FWHM in arcseconds (HSC-like: ~0.7").
    seeing_log_sigma:
        Log-normal width of the seeing distribution.
    transparency_alpha, transparency_beta:
        Beta-distribution parameters for transparency (skewed toward 1).
    zp_jitter_sigma:
        Gaussian sigma of the zero-point jitter in magnitudes.
    """

    median_seeing: float = 0.70
    seeing_log_sigma: float = 0.18
    transparency_alpha: float = 9.0
    transparency_beta: float = 1.2
    zp_jitter_sigma: float = 0.01

    def __post_init__(self) -> None:
        if self.median_seeing <= 0:
            raise ValueError("median_seeing must be positive")
        if self.seeing_log_sigma < 0:
            raise ValueError("seeing_log_sigma must be non-negative")

    def sample(self, mjd: float, rng: np.random.Generator) -> NightConditions:
        """Draw the conditions for one night."""
        seeing = float(rng.lognormal(np.log(self.median_seeing), self.seeing_log_sigma))
        transparency = float(
            np.clip(rng.beta(self.transparency_alpha, self.transparency_beta), 0.3, 1.0)
        )
        return NightConditions(
            mjd=mjd,
            seeing_fwhm=float(np.clip(seeing, 0.4, 2.0)),
            transparency=transparency,
            zp_jitter_mag=float(rng.normal(0.0, self.zp_jitter_sigma)),
        )

    def best_conditions(self, mjd: float) -> NightConditions:
        """Idealised photometric night (used for reference co-adds)."""
        return NightConditions(
            mjd=mjd,
            seeing_fwhm=self.median_seeing * 0.9,
            transparency=1.0,
            zp_jitter_mag=0.0,
        )
