"""Bogus-candidate artefacts.

Section 2 of the paper explains why transient candidate lists are 99.9%
"bogus": (1) the subtraction's kernel optimisation often fails, leaving
dipole residuals around galaxies, and (2) cosmic-ray hits mimic point
sources.  This module injects both artefact families (plus hot pixels)
into difference stamps so the real/bogus rejection stage (and the
robustness of the flux CNN) can be exercised.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

__all__ = ["inject_cosmic_ray", "inject_dipole", "inject_hot_pixel", "make_bogus_stamp"]


def inject_cosmic_ray(
    image: np.ndarray,
    rng: np.random.Generator,
    amplitude: float = 50.0,
    max_length: int = 6,
) -> np.ndarray:
    """Add a cosmic-ray hit: a short, sharp (un-PSF-like) streak.

    Returns a new array; the input is not modified.
    """
    if amplitude <= 0 or max_length < 1:
        raise ValueError("amplitude must be positive and max_length >= 1")
    out = image.copy()
    height, width = image.shape
    row = int(rng.integers(5, height - 5))
    col = int(rng.integers(5, width - 5))
    length = int(rng.integers(1, max_length + 1))
    angle = rng.uniform(0, np.pi)
    for step in range(length):
        r = int(round(row + step * np.sin(angle)))
        c = int(round(col + step * np.cos(angle)))
        if 0 <= r < height and 0 <= c < width:
            out[r, c] += amplitude * rng.uniform(0.6, 1.4)
    return out


def inject_hot_pixel(
    image: np.ndarray, rng: np.random.Generator, amplitude: float = 80.0
) -> np.ndarray:
    """Add a single saturated pixel (detector defect)."""
    if amplitude <= 0:
        raise ValueError("amplitude must be positive")
    out = image.copy()
    row = int(rng.integers(0, image.shape[0]))
    col = int(rng.integers(0, image.shape[1]))
    out[row, col] += amplitude
    return out


def inject_dipole(
    image: np.ndarray,
    rng: np.random.Generator,
    amplitude: float = 30.0,
    sigma: float = 2.0,
    separation: float = 2.0,
) -> np.ndarray:
    """Add a mis-subtraction dipole: adjacent positive and negative blobs.

    This is the signature of a failed kernel match on a galaxy core —
    the most common bogus class in difference imaging.
    """
    if amplitude <= 0 or sigma <= 0 or separation <= 0:
        raise ValueError("amplitude, sigma and separation must be positive")
    out = image.copy()
    height, width = image.shape
    row = rng.uniform(10, height - 10)
    col = rng.uniform(10, width - 10)
    angle = rng.uniform(0, 2 * np.pi)
    dr = separation / 2.0 * np.sin(angle)
    dc = separation / 2.0 * np.cos(angle)
    rows = np.arange(height)[:, None]
    cols = np.arange(width)[None, :]

    def blob(r0: float, c0: float) -> np.ndarray:
        return np.exp(-((rows - r0) ** 2 + (cols - c0) ** 2) / (2 * sigma**2))

    out += amplitude * (blob(row + dr, col + dc) - blob(row - dr, col - dc))
    return out


def make_bogus_stamp(
    shape: tuple[int, int],
    pixel_noise: float,
    rng: np.random.Generator,
    kind: str | None = None,
) -> np.ndarray:
    """Create a pure-bogus difference stamp (noise + one artefact).

    ``kind`` is ``'cosmic'``, ``'dipole'``, ``'hot'`` or None (random).
    """
    kinds = ("cosmic", "dipole", "hot")
    if kind is None:
        kind = kinds[int(rng.integers(len(kinds)))]
    if kind not in kinds:
        raise ValueError(f"unknown artefact kind {kind!r}")
    stamp = rng.normal(0.0, pixel_noise, shape)
    scale = max(pixel_noise, 1e-3)
    if kind == "cosmic":
        return inject_cosmic_ray(stamp, rng, amplitude=scale * rng.uniform(8, 40))
    if kind == "hot":
        return inject_hot_pixel(stamp, rng, amplitude=scale * rng.uniform(15, 60))
    return inject_dipole(stamp, rng, amplitude=scale * rng.uniform(6, 25))
