"""Image differencing with PSF matching.

Transients are found by subtracting a deep reference image from each new
exposure after convolving the sharper image with a *matching kernel* so
both have the same PSF (step 2 of the paper's pipeline).  Two matching
strategies are provided:

* **model-based** — the simulator knows each exposure's PSF FWHM, so the
  Gaussian matching kernel has the analytic width
  ``sigma_k^2 = sigma_broad^2 - sigma_sharp^2`` (what survey pipelines do
  with their PSF models);
* **least-squares fit** — an Alard-Lupton-style delta-function-basis
  kernel fitted directly to the image pair with Tikhonov regularisation,
  used when PSFs are unknown.

Imperfect matching leaves dipole residuals around bright galaxy cores —
the realistic artefact the paper's CNN has to be robust to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from .psf import GaussianPSF, fwhm_to_sigma

__all__ = [
    "DifferenceResult",
    "gaussian_matching_kernel",
    "fit_matching_kernel",
    "difference_images",
]


@dataclass(frozen=True)
class DifferenceResult:
    """Outcome of a subtraction.

    Attributes
    ----------
    difference:
        ``observation - matched(reference)`` (or the analogous expression
        when the observation had to be convolved instead).
    convolved:
        Which input was convolved: ``'reference'`` or ``'observation'``.
    kernel:
        The matching kernel that was applied.
    """

    difference: np.ndarray
    convolved: str
    kernel: np.ndarray


def gaussian_matching_kernel(
    sigma_sharp_px: float, sigma_broad_px: float, size: int = 21
) -> np.ndarray:
    """Analytic Gaussian kernel turning a sharp PSF into a broad one.

    Requires ``sigma_broad_px > sigma_sharp_px``; the kernel width is the
    quadrature difference.
    """
    if size % 2 == 0:
        raise ValueError("kernel size must be odd")
    if sigma_broad_px <= sigma_sharp_px:
        raise ValueError("broad sigma must exceed sharp sigma")
    sigma_k = np.sqrt(sigma_broad_px**2 - sigma_sharp_px**2)
    half = size // 2
    grid = np.arange(size) - half
    rr, cc = np.meshgrid(grid, grid, indexing="ij")
    kernel = np.exp(-(rr**2 + cc**2) / (2.0 * max(sigma_k, 1e-3) ** 2))
    return kernel / kernel.sum()


def fit_matching_kernel(
    reference: np.ndarray,
    observation: np.ndarray,
    kernel_size: int = 11,
    regularization: float = 1e-3,
) -> np.ndarray:
    """Fit K minimising ``||K * reference - observation||^2 + reg ||K||^2``.

    Delta-function kernel basis: each kernel pixel is a free parameter,
    solved by regularised normal equations over all interior stamp pixels.
    """
    if reference.shape != observation.shape:
        raise ValueError("reference and observation must have the same shape")
    if kernel_size % 2 == 0:
        raise ValueError("kernel_size must be odd")
    half = kernel_size // 2
    height, width = reference.shape
    if height <= kernel_size or width <= kernel_size:
        raise ValueError("stamp too small for the requested kernel")

    # Zero padding matches the implicit boundary of the FFT convolution
    # used when the kernel is applied.
    padded = np.pad(reference, half)
    # Design matrix: each row is the kernel-footprint neighbourhood of one pixel.
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kernel_size, kernel_size))
    design = windows.reshape(height * width, kernel_size * kernel_size)
    target = observation.reshape(-1)

    gram = design.T @ design
    gram += regularization * np.trace(gram) / gram.shape[0] * np.eye(gram.shape[0])
    coeffs = np.linalg.solve(gram, design.T @ target)
    return coeffs.reshape(kernel_size, kernel_size)


def _convolve_same(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    return signal.fftconvolve(image, kernel, mode="same")


def difference_images(
    reference: np.ndarray,
    observation: np.ndarray,
    ref_fwhm: float | None = None,
    obs_fwhm: float | None = None,
    pixel_scale: float = 0.17,
    method: str = "model",
    kernel_size: int = 21,
) -> DifferenceResult:
    """PSF-match and subtract: returns observation minus reference.

    Parameters
    ----------
    reference, observation:
        Calibrated, sky-subtracted stamps of the same sky region.
    ref_fwhm, obs_fwhm:
        Seeing FWHM (arcsec) of each stamp; required for ``method='model'``.
    method:
        ``'model'`` (analytic Gaussian kernel from the known FWHMs),
        ``'fit'`` (least-squares kernel) or ``'none'`` (direct subtraction).
    """
    if reference.shape != observation.shape:
        raise ValueError("reference and observation must have the same shape")

    if method == "none":
        return DifferenceResult(observation - reference, "none", np.ones((1, 1)))

    if method == "fit":
        kernel = fit_matching_kernel(reference, observation, kernel_size=11)
        return DifferenceResult(
            observation - _convolve_same(reference, kernel), "reference", kernel
        )

    if method != "model":
        raise ValueError(f"unknown differencing method {method!r}")
    if ref_fwhm is None or obs_fwhm is None:
        raise ValueError("method='model' requires ref_fwhm and obs_fwhm")

    sigma_ref = fwhm_to_sigma(ref_fwhm) / pixel_scale
    sigma_obs = fwhm_to_sigma(obs_fwhm) / pixel_scale
    if abs(sigma_obs - sigma_ref) < 1e-6:
        return DifferenceResult(observation - reference, "none", np.ones((1, 1)))

    if sigma_obs > sigma_ref:
        # Usual case: deep reference is sharper; blur it up to the exposure.
        kernel = gaussian_matching_kernel(sigma_ref, sigma_obs, size=kernel_size)
        return DifferenceResult(
            observation - _convolve_same(reference, kernel), "reference", kernel
        )
    # Exceptionally sharp exposure: blur the observation instead.  The
    # supernova flux is preserved because the kernel integrates to one.
    kernel = gaussian_matching_kernel(sigma_obs, sigma_ref, size=kernel_size)
    return DifferenceResult(
        _convolve_same(observation, kernel) - reference, "observation", kernel
    )
