"""Flat Lambda-CDM cosmology: distances and distance moduli.

The synthetic dataset embeds supernovae at catalogue photo-z's between 0.1
and 2.0; converting an absolute peak magnitude to an observed flux needs
the luminosity distance.  We implement the standard flat FLRW integrals
with Planck-like parameters (H0 = 70, Om = 0.3) as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

__all__ = ["FlatLambdaCDM", "DEFAULT_COSMOLOGY"]

_C_KM_S = 299_792.458  # speed of light [km/s]


@dataclass(frozen=True)
class FlatLambdaCDM:
    """A flat Friedmann-Lemaitre-Robertson-Walker cosmology.

    Parameters
    ----------
    h0:
        Hubble constant in km/s/Mpc.
    omega_m:
        Matter density parameter; dark energy fills the rest
        (``omega_lambda = 1 - omega_m``).
    """

    h0: float = 70.0
    omega_m: float = 0.3

    def __post_init__(self) -> None:
        if self.h0 <= 0:
            raise ValueError(f"H0 must be positive, got {self.h0}")
        if not 0.0 < self.omega_m < 1.0:
            raise ValueError(f"omega_m must be in (0, 1), got {self.omega_m}")

    @property
    def omega_lambda(self) -> float:
        return 1.0 - self.omega_m

    @property
    def hubble_distance(self) -> float:
        """c / H0 in Mpc."""
        return _C_KM_S / self.h0

    def _inv_e(self, z: float) -> float:
        """1 / E(z) with E(z) = sqrt(Om (1+z)^3 + OL)."""
        return 1.0 / np.sqrt(self.omega_m * (1.0 + z) ** 3 + self.omega_lambda)

    def comoving_distance(self, z: float | np.ndarray) -> float | np.ndarray:
        """Line-of-sight comoving distance in Mpc."""
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        if np.any(z_arr < 0):
            raise ValueError("redshift must be non-negative")
        result = np.array(
            [integrate.quad(self._inv_e, 0.0, zi)[0] for zi in z_arr]
        )
        result *= self.hubble_distance
        return result if np.ndim(z) else float(result[0])

    def luminosity_distance(self, z: float | np.ndarray) -> float | np.ndarray:
        """Luminosity distance D_L = (1+z) D_C in Mpc (flat universe)."""
        return (1.0 + np.asarray(z, dtype=float)) * self.comoving_distance(z)

    def distance_modulus(self, z: float | np.ndarray) -> float | np.ndarray:
        """mu = 5 log10(D_L / 10 pc).

        Raises for z <= 0 where the modulus diverges.
        """
        z_arr = np.asarray(z, dtype=float)
        if np.any(z_arr <= 0):
            raise ValueError("distance modulus requires z > 0")
        d_l = np.asarray(self.luminosity_distance(z))
        mu = 5.0 * np.log10(d_l * 1e6 / 10.0)
        return mu if np.ndim(z) else float(mu)

    def time_dilation(self, z: float) -> float:
        """Observer-frame stretch of rest-frame intervals: (1 + z)."""
        if z < 0:
            raise ValueError("redshift must be non-negative")
        return 1.0 + z


DEFAULT_COSMOLOGY = FlatLambdaCDM()
