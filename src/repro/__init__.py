"""Reproduction of "Single-epoch supernova classification with deep
convolutional neural networks" (Kimura et al., ICDCS 2017).

Subpackages
-----------
``repro.nn``
    NumPy deep-learning framework (autograd, CNN layers, optimisers).
``repro.photometry`` / ``repro.lightcurves`` / ``repro.cosmology``
    Astronomy substrate: bands, magnitudes, SALT2-like light curves,
    flat Lambda-CDM distances.
``repro.catalog`` / ``repro.survey``
    COSMOS-like galaxy catalogue and the imaging simulator (PSFs, noise,
    scheduling, PSF-matched differencing).
``repro.datasets``
    The Section-3 synthetic dataset builder.
``repro.core``
    The paper's models: band-wise flux CNN, highway-network classifier,
    joint fine-tuned model, and the :class:`~repro.core.SupernovaPipeline`
    facade.
``repro.baselines``
    Table-2 comparators (template fitting, Bayesian single-epoch, random
    forest, recurrent network).
``repro.eval``
    ROC curves, AUC, point metrics.
``repro.runtime``
    Resilience runtime: atomic checkpoints, resume, divergence guards,
    per-sample fault isolation and fault injection.
``repro.serve``
    Hardened inference: input validation/repair, band masking with
    prior imputation, degradation-flagged predictions.
``repro.perf``
    Performance instrumentation: scoped timers, op counters, JSON
    reports driving the ``BENCH_*`` throughput trajectory.
"""

from . import (
    baselines,
    catalog,
    core,
    cosmology,
    datasets,
    eval,
    lightcurves,
    nn,
    perf,
    photometry,
    runtime,
    serve,
    survey,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "cosmology",
    "photometry",
    "lightcurves",
    "catalog",
    "survey",
    "datasets",
    "core",
    "baselines",
    "eval",
    "runtime",
    "serve",
    "perf",
    "utils",
    "__version__",
]
