"""Bayesian single-epoch photometric classification — Poznanski, Maoz &
Gal-Yam (2007), paper ref [14] and the single-epoch rows of Table 2.

A candidate observed at one epoch in the five bands is compared with
every type hypothesis by *marginalising* (not profiling) over redshift,
phase and amplitude:

    P(T | f) ~ p(T) * sum_z sum_phase p(z) p(phase) L(f | T, z, phase)

with the amplitude profiled per grid point (an amplitude prior adds
little once the redshift prior pins the distance scale — the original
method's redshift-dependent magnitude prior is emulated by restricting
the amplitude to a plausible range around 1).

With ``known_redshift=True`` the z sum collapses to the true redshift
bin, reproducing the method's much stronger "+ redshift" variant.
"""

from __future__ import annotations

import numpy as np

from ..lightcurves import SNType
from .template_grid import TemplateFluxGrid

__all__ = ["PoznanskiClassifier"]


class PoznanskiClassifier:
    """Bayesian single-epoch SNIa classifier.

    Parameters
    ----------
    grid:
        Shared canonical flux grid.
    known_redshift:
        Condition on the true redshift instead of marginalising.
    amplitude_range:
        Allowed multiplicative range around the canonical template
        amplitude (emulates the brightness prior).
    phase_prior_days:
        Half-width of the flat phase prior around the observation.
    """

    def __init__(
        self,
        grid: TemplateFluxGrid | None = None,
        known_redshift: bool = False,
        amplitude_range: tuple[float, float] = (0.25, 4.0),
        phase_prior_days: float = 60.0,
    ) -> None:
        if amplitude_range[0] <= 0 or amplitude_range[0] >= amplitude_range[1]:
            raise ValueError("amplitude_range must be (low, high) with 0 < low < high")
        self.grid = grid or TemplateFluxGrid()
        self.known_redshift = known_redshift
        self.amplitude_range = amplitude_range
        self.phase_prior_days = phase_prior_days

    def _log_like(
        self,
        sn_type: SNType,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        z_indices: np.ndarray,
    ) -> float:
        """log of the marginal likelihood over (z, phase), profiled amplitude."""
        weights = 1.0 / flux_err**2
        t_ref = float(mjd.mean())
        offsets = np.arange(-self.phase_prior_days, self.phase_prior_days + 1.0, 4.0)
        log_terms: list[float] = []
        for zi in z_indices:
            for offset in offsets:
                phases = mjd - (t_ref + offset)
                model = self.grid.flux(sn_type, int(zi), band_idx, phases)
                denom = float(np.sum(weights * model**2))
                if denom > 0:
                    amp = float(np.sum(weights * flux * model)) / denom
                    amp = float(np.clip(amp, *self.amplitude_range))
                else:
                    amp = 0.0
                chi2 = float(np.sum(weights * (flux - amp * model) ** 2))
                log_terms.append(-chi2 / 2.0)
        arr = np.array(log_terms)
        peak = arr.max()
        return float(peak + np.log(np.exp(arr - peak).mean()))

    def _z_indices(self, redshift: float | None) -> np.ndarray:
        if self.known_redshift:
            if redshift is None:
                raise ValueError("known_redshift=True requires per-sample redshifts")
            return np.array([int(np.argmin(np.abs(self.grid.redshifts - redshift)))])
        return np.arange(len(self.grid.redshifts))

    def score_sample(
        self,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        redshift: float | None = None,
    ) -> float:
        """P(SNIa) for one single-epoch candidate."""
        flux = np.asarray(flux, dtype=float)
        flux_err = np.asarray(flux_err, dtype=float)
        if np.any(flux_err <= 0):
            raise ValueError("flux errors must be positive")
        z_indices = self._z_indices(redshift)
        log_likes = {
            t: self._log_like(t, flux, flux_err, mjd, band_idx, z_indices)
            for t in SNType
        }
        peak = max(log_likes.values())
        likes = {t: np.exp(v - peak) for t, v in log_likes.items()}
        total = sum(likes.values())
        return float(likes[SNType.IA] / total)

    def predict_proba(
        self,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        redshifts: np.ndarray | None = None,
    ) -> np.ndarray:
        """P(SNIa) for a batch of single-epoch candidates; arrays (N, V)."""
        flux = np.asarray(flux, dtype=float)
        flux_err = np.asarray(flux_err, dtype=float)
        n = flux.shape[0]
        scores = np.empty(n)
        for i in range(n):
            z = None if redshifts is None else float(redshifts[i])
            scores[i] = self.score_sample(flux[i], flux_err[i], mjd[i], band_idx[i], z)
        return scores
