"""Precomputed observer-frame template flux grids.

Both photometric baselines (chi^2 template fitting and the Bayesian
single-epoch classifier) repeatedly evaluate "the flux of a canonical
type-T supernova at redshift z, in band b, at phase dt from peak".
Evaluating the light-curve model inside those loops is wasteful, so this
module tabulates each (type, redshift, band) combination on a phase grid
once and interpolates.

Grids use the *canonical* template of each type (zero scatter, zero
stretch/colour), with a free amplitude left to the fitters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cosmology import DEFAULT_COSMOLOGY, FlatLambdaCDM
from ..lightcurves import LightCurve, SALT2LikeModel, SALT2Parameters, SNType, TEMPLATES
from ..lightcurves.population import NonIaRealization
from ..photometry import GRIZY

__all__ = ["TemplateFluxGrid"]


def _canonical_model(sn_type: SNType):
    if sn_type.is_ia:
        return SALT2LikeModel(SALT2Parameters())
    return NonIaRealization(TEMPLATES[sn_type], magnitude_offset=0.0, stretch=1.0)


@dataclass(frozen=True)
class _GridAxes:
    redshifts: np.ndarray
    phases: np.ndarray


class TemplateFluxGrid:
    """Tabulated canonical fluxes: ``grid[type][z_idx, band, phase_idx]``.

    Parameters
    ----------
    redshifts:
        Redshift grid (defaults to 14 points covering the survey range).
    phase_min, phase_max, phase_step:
        Observer-frame phase grid relative to peak, in days.
    """

    def __init__(
        self,
        redshifts: np.ndarray | None = None,
        phase_min: float = -30.0,
        phase_max: float = 150.0,
        phase_step: float = 2.0,
        cosmology: FlatLambdaCDM = DEFAULT_COSMOLOGY,
    ) -> None:
        z_grid = (
            np.asarray(redshifts, dtype=float)
            if redshifts is not None
            else np.linspace(0.1, 2.0, 14)
        )
        if z_grid.ndim != 1 or len(z_grid) == 0 or np.any(z_grid <= 0):
            raise ValueError("redshift grid must be a 1-D array of positive values")
        phases = np.arange(phase_min, phase_max + phase_step, phase_step)
        self.axes = _GridAxes(redshifts=z_grid, phases=phases)
        self._tables: dict[SNType, np.ndarray] = {}
        for sn_type in SNType:
            model = _canonical_model(sn_type)
            table = np.zeros((len(z_grid), len(GRIZY), len(phases)))
            for zi, z in enumerate(z_grid):
                curve = LightCurve(model, redshift=float(z), peak_mjd=0.0, cosmology=cosmology)
                for band in GRIZY:
                    table[zi, band.index] = curve.flux(band, phases)
            self._tables[sn_type] = table

    @property
    def redshifts(self) -> np.ndarray:
        return self.axes.redshifts

    @property
    def phases(self) -> np.ndarray:
        return self.axes.phases

    def flux(
        self,
        sn_type: SNType,
        z_index: int,
        band_index: np.ndarray,
        phase: np.ndarray,
    ) -> np.ndarray:
        """Interpolated canonical flux for visits of one candidate.

        Parameters
        ----------
        z_index:
            Index into the redshift grid.
        band_index, phase:
            Per-visit band indices and phases (observer days from peak);
            both shaped (V,).
        """
        table = self._tables[sn_type][z_index]  # (bands, phases)
        phase = np.asarray(phase, dtype=float)
        band_index = np.asarray(band_index)
        out = np.empty(phase.shape, dtype=float)
        for b in np.unique(band_index):
            sel = band_index == b
            out[sel] = np.interp(
                phase[sel], self.phases, table[b], left=0.0, right=table[b, -1]
            )
        return out
