"""Random forest on light-curve features — a Lochner et al. (2016)-style
machine-learning baseline (multi-epoch rows of Table 2), implemented from
scratch.

CART decision trees with Gini impurity, bootstrap resampling and random
feature sub-sampling at every split.  Probability estimates average the
per-tree leaf class frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTree", "RandomForestClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry the positive-class fraction."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probability: float = 0.5

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


def _best_split(
    x: np.ndarray, y: np.ndarray, feature_ids: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, impurity_decrease) over candidate features.

    Uses the sorted-prefix trick: for each feature, sorting once gives
    every possible split's class counts via cumulative sums.
    """
    n = len(y)
    parent_impurity = _gini(float(y.sum()), float(n))
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    for f in feature_ids:
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order, f]
        ys = y[order]
        pos_prefix = np.cumsum(ys)
        total_pos = pos_prefix[-1]
        # Candidate split after position i (left = first i+1 samples).
        idx = np.arange(min_leaf - 1, n - min_leaf)
        if idx.size == 0:
            continue
        # Only split between distinct feature values.
        distinct = xs[idx] < xs[idx + 1]
        idx = idx[distinct]
        if idx.size == 0:
            continue
        n_left = idx + 1.0
        n_right = n - n_left
        pos_left = pos_prefix[idx].astype(float)
        pos_right = total_pos - pos_left
        p_left = pos_left / n_left
        p_right = pos_right / n_right
        child = (n_left * 2 * p_left * (1 - p_left) + n_right * 2 * p_right * (1 - p_right)) / n
        gains = parent_impurity - child
        j = int(np.argmax(gains))
        if gains[j] > best_gain:
            best_gain = float(gains[j])
            threshold = float((xs[idx[j]] + xs[idx[j] + 1]) / 2.0)
            best = (int(f), threshold, best_gain)
    return best


class DecisionTree:
    """A single CART tree for binary classification."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth <= 0 or min_samples_leaf <= 0:
            raise ValueError("max_depth and min_samples_leaf must be positive")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._root: _Node | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(float).reshape(-1)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (N, F) aligned with y")
        self._n_features = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(probability=float(y.mean()) if len(y) else 0.5)
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or y.min() == y.max()
        ):
            return node
        k = self.max_features or self._n_features
        feature_ids = self._rng.choice(
            self._n_features, size=min(k, self._n_features), replace=False
        )
        split = _best_split(x, y, feature_ids, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.probability
        return out


class RandomForestClassifier:
    """Bagged ensemble of decision trees.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth, min_samples_leaf:
        Per-tree regularisation.
    max_features:
        Features considered per split; default sqrt(F).
    """

    def __init__(
        self,
        n_trees: int = 100,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(float).reshape(-1)
        rng = np.random.default_rng(self.seed)
        n, n_features = x.shape
        max_features = self.max_features or max(1, int(np.sqrt(n_features)))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        return np.mean([tree.predict_proba(x) for tree in self._trees], axis=0)
