"""Karpenka-style parametric light-curve features — paper ref [6].

Karpenka, Feroz & Hobson (2013) fit every band's light curve with the
flexible phenomenological form

    f(t) = A * (1 + B (t - t1)^2) * exp(-(t - t0)/T_fall)
                / (1 + exp(-(t - t0)/T_rise))

and feed the fitted parameters to a neural network.  We implement the
same: per-band least-squares fits (with sensible bounds and fallbacks
for non-detections), parameters stacked into a feature vector, and a
convenience classifier wrapper around the highway network.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..photometry import GRIZY, signed_log10

__all__ = ["karpenka_model", "fit_karpenka_band", "karpenka_features", "KARPENKA_FEATURE_DIM"]

_N_PARAMS = 6  # A, B, t0, t1, T_rise, T_fall
KARPENKA_FEATURE_DIM = len(GRIZY) * (_N_PARAMS + 1)  # + chi2 per band


def karpenka_model(t: np.ndarray, params: np.ndarray) -> np.ndarray:
    """Evaluate the Karpenka et al. (2013) light-curve form."""
    amp, curvature, t0, t1, t_rise, t_fall = params
    t = np.asarray(t, dtype=float)
    rise = 1.0 + np.exp(-np.clip((t - t0) / max(t_rise, 1e-3), -50.0, 50.0))
    fall = np.exp(-np.clip((t - t0) / max(t_fall, 1e-3), -50.0, 50.0))
    return amp * (1.0 + curvature * (t - t1) ** 2) * fall / rise


def fit_karpenka_band(
    mjd: np.ndarray, flux: np.ndarray, flux_err: np.ndarray
) -> tuple[np.ndarray, float]:
    """Least-squares fit of one band's series; returns (params, chi2).

    With fewer than 4 points the fit is under-determined and a flat
    zero-flux solution is returned (chi2 of the data against zero).
    """
    mjd = np.asarray(mjd, dtype=float)
    flux = np.asarray(flux, dtype=float)
    flux_err = np.asarray(flux_err, dtype=float)
    if not (mjd.shape == flux.shape == flux_err.shape):
        raise ValueError("mjd, flux and flux_err must align")
    if np.any(flux_err <= 0):
        raise ValueError("flux errors must be positive")
    if mjd.size < 4:
        chi2 = float(np.sum((flux / flux_err) ** 2))
        return np.zeros(_N_PARAMS), chi2

    peak_idx = int(np.argmax(flux))
    peak_flux = max(float(flux[peak_idx]), 1e-3)
    t_peak = float(mjd[peak_idx])
    initial = np.array([peak_flux * 2.0, 0.0, t_peak, t_peak, 5.0, 20.0])
    lower = [0.0, -1e-2, mjd.min() - 60.0, mjd.min() - 60.0, 0.5, 1.0]
    upper = [peak_flux * 50 + 10, 1e-2, mjd.max() + 60.0, mjd.max() + 60.0, 60.0, 300.0]

    def residuals(params: np.ndarray) -> np.ndarray:
        return (karpenka_model(mjd, params) - flux) / flux_err

    try:
        result = optimize.least_squares(
            residuals, initial, bounds=(lower, upper), max_nfev=300
        )
        return result.x, float(np.sum(result.fun**2))
    except Exception:
        chi2 = float(np.sum((flux / flux_err) ** 2))
        return np.zeros(_N_PARAMS), chi2


def karpenka_features(
    flux: np.ndarray,
    flux_err: np.ndarray,
    mjd: np.ndarray,
    band_idx: np.ndarray,
) -> np.ndarray:
    """Per-band fit parameters + chi2 stacked into one feature vector.

    Accepts one object's aligned per-observation arrays; returns
    ``(35,)`` features (5 bands x (6 params + chi2)), with amplitudes
    signed-log compressed and times centred on the mean date.
    """
    flux = np.asarray(flux, dtype=float)
    mjd = np.asarray(mjd, dtype=float)
    band_idx = np.asarray(band_idx)
    t_ref = float(mjd.mean())
    features = np.zeros(KARPENKA_FEATURE_DIM)
    for band in GRIZY:
        sel = band_idx == band.index
        offset = band.index * (_N_PARAMS + 1)
        if not np.any(sel):
            continue
        params, chi2 = fit_karpenka_band(
            mjd[sel], flux[sel], np.asarray(flux_err, dtype=float)[sel]
        )
        amp, curvature, t0, t1, t_rise, t_fall = params
        features[offset : offset + _N_PARAMS + 1] = (
            signed_log10(amp),
            curvature * 1e3,
            (t0 - t_ref) / 50.0 if amp > 0 else 0.0,
            (t1 - t_ref) / 50.0 if amp > 0 else 0.0,
            t_rise / 50.0,
            t_fall / 100.0,
            signed_log10(chi2),
        )
    return features
