"""Baseline classifiers for the Table-2 comparison.

* :class:`TemplateFitClassifier` — chi^2 light-curve template fitting
  (Sullivan-style multi-epoch photometric approach).
* :class:`PoznanskiClassifier` — Bayesian single-epoch classification
  with and without a known redshift (paper ref [14]).
* :class:`RandomForestClassifier` — feature-based ML baseline
  (Lochner-style), with the underlying :class:`DecisionTree`.
* :class:`RecurrentClassifier` — GRU sequence baseline (Charnock-style).
"""

from .karpenka import (
    KARPENKA_FEATURE_DIM,
    fit_karpenka_band,
    karpenka_features,
    karpenka_model,
)
from .poznanski import PoznanskiClassifier
from .random_forest import DecisionTree, RandomForestClassifier
from .realbogus import FEATURE_NAMES, RealBogusClassifier, stamp_features
from .rnn import GRUCell, LSTMCell, RecurrentClassifier, sequence_features
from .snpcc_features import SNPCC_FEATURE_DIM, snpcc_features, snpcc_sample_features
from .template_fit import TemplateFitClassifier
from .template_grid import TemplateFluxGrid

__all__ = [
    "RealBogusClassifier",
    "stamp_features",
    "FEATURE_NAMES",
    "TemplateFluxGrid",
    "TemplateFitClassifier",
    "PoznanskiClassifier",
    "RandomForestClassifier",
    "DecisionTree",
    "GRUCell",
    "LSTMCell",
    "RecurrentClassifier",
    "sequence_features",
    "KARPENKA_FEATURE_DIM",
    "karpenka_model",
    "karpenka_features",
    "fit_karpenka_band",
    "SNPCC_FEATURE_DIM",
    "snpcc_features",
    "snpcc_sample_features",
]
