"""Real/bogus candidate rejection (paper Section 2 context).

Before type classification, surveys must reject the ~99.9% of detected
candidates that are subtraction artefacts or cosmic rays.  Bailey et al.
(2007), Bloom et al. (2012) and Brink et al. (2013) did this with random
forests over hand-crafted stamp features; Morii et al. (2016) with deep
networks.  This module implements the feature-based approach on top of
the from-scratch random forest, closing the paper's full pipeline:
detect -> real/bogus -> type classification.
"""

from __future__ import annotations

import numpy as np

from .random_forest import RandomForestClassifier

__all__ = ["stamp_features", "RealBogusClassifier", "FEATURE_NAMES"]

FEATURE_NAMES = (
    "peak_value",
    "peak_to_flux",
    "fwhm_proxy",
    "symmetry",
    "negative_fraction",
    "dipole_score",
    "edge_fraction",
    "second_moment",
)


def stamp_features(stamp: np.ndarray) -> np.ndarray:
    """Extract the 8 classic real/bogus features from a candidate stamp.

    Real point sources are round, PSF-wide, positive and centre-peaked;
    cosmic rays are too sharp, dipoles have strong negative counterparts,
    and edge artefacts concentrate flux at the boundary.
    """
    if stamp.ndim != 2:
        raise ValueError(f"stamp must be 2-D, got shape {stamp.shape}")
    height, width = stamp.shape
    total = float(np.abs(stamp).sum()) + 1e-12
    peak = float(stamp.max())
    peak_idx = np.unravel_index(int(np.argmax(stamp)), stamp.shape)

    # FWHM proxy: number of pixels above half the peak (PSF-wide for real).
    above_half = int(np.sum(stamp >= peak / 2.0)) if peak > 0 else 0

    # Symmetry: correlation of the stamp with its 180-degree rotation.
    rotated = stamp[::-1, ::-1]
    num = float((stamp * rotated).sum())
    den = float((stamp**2).sum()) + 1e-12
    symmetry = num / den

    negative_fraction = float((stamp < 0).sum()) / stamp.size

    # Dipole score: |most negative| / |most positive|.
    dipole = float(-stamp.min() / (peak + 1e-12)) if peak > 0 else 1.0

    edge = np.concatenate([stamp[0], stamp[-1], stamp[:, 0], stamp[:, -1]])
    edge_fraction = float(np.abs(edge).sum()) / total

    # Second moment of the positive flux around the peak (sharpness).
    rows = np.arange(height)[:, None] - peak_idx[0]
    cols = np.arange(width)[None, :] - peak_idx[1]
    positive = np.maximum(stamp, 0.0)
    pos_total = float(positive.sum()) + 1e-12
    second_moment = float(((rows**2 + cols**2) * positive).sum() / pos_total)

    return np.array(
        [
            peak,
            peak / total,
            float(above_half),
            symmetry,
            negative_fraction,
            dipole,
            edge_fraction,
            second_moment,
        ]
    )


class RealBogusClassifier:
    """Random forest over stamp features, scoring P(real).

    Parameters
    ----------
    n_trees, max_depth:
        Forest hyper-parameters (forwarded to the from-scratch forest).
    """

    def __init__(self, n_trees: int = 60, max_depth: int = 10, seed: int = 0) -> None:
        self._forest = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        )
        self._fitted = False

    @staticmethod
    def _features(stamps: np.ndarray) -> np.ndarray:
        stamps = np.asarray(stamps)
        if stamps.ndim != 3:
            raise ValueError(f"stamps must be (N, H, W), got {stamps.shape}")
        return np.stack([stamp_features(s) for s in stamps])

    def fit(self, stamps: np.ndarray, is_real: np.ndarray) -> "RealBogusClassifier":
        """Train on labelled candidate stamps (1 = real transient)."""
        self._forest.fit(self._features(stamps), np.asarray(is_real, dtype=float))
        self._fitted = True
        return self

    def predict_proba(self, stamps: np.ndarray) -> np.ndarray:
        """P(real) per stamp."""
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        return self._forest.predict_proba(self._features(stamps))
