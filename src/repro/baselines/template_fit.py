"""Chi-square light-curve template fitting — the classical photometric
approach the paper compares against (Sullivan et al. 2006 [18];
multi-epoch rows of Table 2).

Each candidate's multi-band, multi-epoch fluxes are fitted against every
type's canonical template over a grid of (redshift, peak date), with the
amplitude profiled analytically.  The SNIa score is the softmax of the
per-type best-fit chi^2 values, i.e. a profile-likelihood ratio.
"""

from __future__ import annotations

import numpy as np

from ..lightcurves import SNType
from .template_grid import TemplateFluxGrid

__all__ = ["TemplateFitClassifier"]


class TemplateFitClassifier:
    """Photometric type classifier via template chi^2 fitting.

    Parameters
    ----------
    grid:
        Shared flux grid; built with defaults when omitted.
    peak_offsets:
        Candidate peak dates, in days relative to the mean visit date.
    known_redshift:
        If True, the fit is restricted to the grid point nearest the
        candidate's true redshift (the "+ redshift" rows of Table 2).
    amplitude_range:
        Allowed multiplicative range around the canonical template
        amplitude.  Supernova absolute magnitudes scatter by well under a
        magnitude within a type, so an unbounded amplitude would let a
        faint core-collapse template imitate a bright Ia; the clamp keeps
        the brightness information in the fit.
    """

    def __init__(
        self,
        grid: TemplateFluxGrid | None = None,
        peak_offsets: np.ndarray | None = None,
        known_redshift: bool = False,
        amplitude_range: tuple[float, float] = (0.3, 3.0),
    ) -> None:
        if amplitude_range[0] <= 0 or amplitude_range[0] >= amplitude_range[1]:
            raise ValueError("amplitude_range must be (low, high) with 0 < low < high")
        self.grid = grid or TemplateFluxGrid()
        self.peak_offsets = (
            np.asarray(peak_offsets, dtype=float)
            if peak_offsets is not None
            else np.arange(-50.0, 51.0, 5.0)
        )
        self.known_redshift = known_redshift
        self.amplitude_range = amplitude_range

    # ------------------------------------------------------------------
    def _chi2_type(
        self,
        sn_type: SNType,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        z_indices: np.ndarray,
    ) -> float:
        """Best chi^2 of one type over the (z, peak) grid (amplitude profiled)."""
        weights = 1.0 / flux_err**2
        t_ref = mjd.mean()
        best = np.inf
        for zi in z_indices:
            for offset in self.peak_offsets:
                phases = mjd - (t_ref + offset)
                model = self.grid.flux(sn_type, int(zi), band_idx, phases)
                denom = float(np.sum(weights * model**2))
                if denom <= 0:
                    # Model dark everywhere: chi2 of pure-noise hypothesis.
                    chi2 = float(np.sum(weights * flux**2))
                else:
                    amp = float(np.sum(weights * flux * model)) / denom
                    amp = float(np.clip(amp, *self.amplitude_range))
                    chi2 = float(np.sum(weights * (flux - amp * model) ** 2))
                if chi2 < best:
                    best = chi2
        return best

    def _z_indices(self, redshift: float | None) -> np.ndarray:
        if self.known_redshift:
            if redshift is None:
                raise ValueError("known_redshift=True requires per-sample redshifts")
            return np.array([int(np.argmin(np.abs(self.grid.redshifts - redshift)))])
        return np.arange(len(self.grid.redshifts))

    # ------------------------------------------------------------------
    def score_sample(
        self,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        redshift: float | None = None,
    ) -> float:
        """P(SNIa) for one candidate from its visit fluxes."""
        flux = np.asarray(flux, dtype=float)
        flux_err = np.asarray(flux_err, dtype=float)
        if np.any(flux_err <= 0):
            raise ValueError("flux errors must be positive")
        z_indices = self._z_indices(redshift)
        chi2 = {
            sn_type: self._chi2_type(sn_type, flux, flux_err, mjd, band_idx, z_indices)
            for sn_type in SNType
        }
        # Profile-likelihood softmax; subtract the minimum for stability.
        min_chi2 = min(chi2.values())
        likes = {t: np.exp(-(c - min_chi2) / 2.0) for t, c in chi2.items()}
        total = sum(likes.values())
        return float(likes[SNType.IA] / total)

    def predict_proba(
        self,
        flux: np.ndarray,
        flux_err: np.ndarray,
        mjd: np.ndarray,
        band_idx: np.ndarray,
        redshifts: np.ndarray | None = None,
    ) -> np.ndarray:
        """P(SNIa) for a batch: all arrays (N, V); redshifts (N,)."""
        flux = np.asarray(flux, dtype=float)
        n = flux.shape[0]
        scores = np.empty(n)
        for i in range(n):
            z = None if redshifts is None else float(redshifts[i])
            scores[i] = self.score_sample(
                flux[i], np.asarray(flux_err, dtype=float)[i], mjd[i], band_idx[i], z
            )
        return scores
