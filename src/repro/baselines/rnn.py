"""Recurrent light-curve classifier — a Charnock & Moss (2016)-style
sequence baseline (multi-epoch rows of Table 2), built on :mod:`repro.nn`.

The light curve is consumed epoch by epoch: each step sees the 10
features of one epoch (5 signed-log fluxes + 5 scaled dates) and updates
a GRU hidden state; the final state feeds a linear read-out.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor

__all__ = ["GRUCell", "LSTMCell", "RecurrentClassifier", "sequence_features"]


class GRUCell(nn.Module):
    """Gated recurrent unit cell."""

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # One fused input->gates projection and one hidden->gates projection
        # per gate (update z, reset r, candidate n).
        self.w_z = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_r = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_n_x = nn.Linear(input_dim, hidden_dim, rng=rng)
        self.w_n_h = nn.Linear(hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = nn.concat([x, h], axis=1)
        z = self.w_z(combined).sigmoid()
        r = self.w_r(combined).sigmoid()
        candidate = (self.w_n_x(x) + self.w_n_h(r * h)).tanh()
        return (1.0 - z) * h + z * candidate


class LSTMCell(nn.Module):
    """Long short-term memory cell (Charnock & Moss used LSTMs)."""

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_i = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_f = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_o = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_g = nn.Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        # Forget-gate bias starts positive so early training remembers.
        self.w_f.bias.data = self.w_f.bias.data + 1.0

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        combined = nn.concat([x, h], axis=1)
        i = self.w_i(combined).sigmoid()
        f = self.w_f(combined).sigmoid()
        o = self.w_o(combined).sigmoid()
        g = self.w_g(combined).tanh()
        c_next = f * c + i * g
        return o * c_next.tanh(), c_next


class RecurrentClassifier(nn.Module):
    """Recurrent network over per-epoch feature vectors -> SNIa logit.

    Parameters
    ----------
    input_dim:
        Features per time step (10 for the standard feature layout).
    hidden_dim:
        Recurrent state width.
    cell:
        ``'gru'`` (default) or ``'lstm'``.
    """

    def __init__(
        self,
        input_dim: int = 10,
        hidden_dim: int = 32,
        cell: str = "gru",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if cell not in ("gru", "lstm"):
            raise ValueError(f"unknown cell type {cell!r}")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.cell_kind = cell
        if cell == "gru":
            self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        else:
            self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.readout = nn.Linear(hidden_dim, 1, rng=rng)

    def forward(self, sequence: Tensor) -> Tensor:
        """Map (N, T, F) epoch sequences to (N,) logits."""
        if sequence.ndim != 3 or sequence.shape[2] != self.input_dim:
            raise ValueError(
                f"expected (N, T, {self.input_dim}) sequences, got {sequence.shape}"
            )
        n, steps = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((n, self.hidden_dim), dtype=np.float32))
        if self.cell_kind == "lstm":
            c = Tensor(np.zeros((n, self.hidden_dim), dtype=np.float32))
            for t in range(steps):
                h, c = self.cell(sequence[:, t, :], h, c)
        else:
            for t in range(steps):
                h = self.cell(sequence[:, t, :], h)
        return self.readout(h).reshape(-1)

    def predict_proba(self, sequences: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        """P(SNIa) for NumPy (N, T, F) input."""
        outputs = []
        with nn.no_grad():
            for start in range(0, len(sequences), batch_size):
                logits = self.forward(Tensor(sequences[start : start + batch_size]))
                outputs.append(logits.sigmoid().numpy())
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.float32)


def sequence_features(features_flat: np.ndarray, n_epochs: int) -> np.ndarray:
    """Reshape (N, 10*E) stacked epoch features into (N, E, 10) sequences."""
    features_flat = np.asarray(features_flat)
    n, dim = features_flat.shape
    if dim % n_epochs != 0:
        raise ValueError(f"feature dim {dim} not divisible by {n_epochs} epochs")
    return features_flat.reshape(n, n_epochs, dim // n_epochs)
