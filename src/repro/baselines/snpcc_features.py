"""Feature extraction for irregularly sampled light curves.

SNPCC-style data has a different number of observations per object and
band, so the fixed 10-per-epoch feature layout does not apply.  This
module computes the standard per-band summary statistics used by
feature-based entries to the challenge (Lochner et al. 2016 style):

* signed-log peak flux and the date of the peak,
* detection count,
* mean rise slope (before peak) and fall slope (after peak),

giving ``5 bands x 5 = 25`` features per object.
"""

from __future__ import annotations

import numpy as np

from ..datasets.snpcc import SNPCCDataset, SNPCCSample
from ..photometry import GRIZY, signed_log10

__all__ = ["snpcc_sample_features", "snpcc_features", "SNPCC_FEATURE_DIM"]

_PER_BAND = 5
SNPCC_FEATURE_DIM = len(GRIZY) * _PER_BAND


def snpcc_sample_features(sample: SNPCCSample) -> np.ndarray:
    """The 25-dimensional summary feature vector of one object."""
    t_ref = float(sample.mjd.mean())
    features = np.zeros(SNPCC_FEATURE_DIM)
    for band in GRIZY:
        sel = sample.band == band.index
        offset = band.index * _PER_BAND
        if not np.any(sel):
            continue  # all-zero block marks "no detections in this band"
        flux = sample.flux[sel]
        mjd = sample.mjd[sel]
        peak_idx = int(np.argmax(flux))
        peak_flux = float(flux[peak_idx])
        peak_mjd = float(mjd[peak_idx])

        def mean_slope(mask: np.ndarray) -> float:
            if mask.sum() < 2:
                return 0.0
            t = mjd[mask]
            f = flux[mask]
            dt = t[-1] - t[0]
            return float((f[-1] - f[0]) / dt) if dt > 0 else 0.0

        rise = mean_slope(mjd <= peak_mjd)
        fall = mean_slope(mjd >= peak_mjd)
        features[offset : offset + _PER_BAND] = (
            signed_log10(peak_flux),
            (peak_mjd - t_ref) / 50.0,
            float(sel.sum()) / 10.0,
            signed_log10(rise * 10.0),
            signed_log10(fall * 10.0),
        )
    return features


def snpcc_features(dataset: SNPCCDataset) -> tuple[np.ndarray, np.ndarray]:
    """Stack features and labels for a whole SNPCC-style dataset."""
    features = np.stack([snpcc_sample_features(s) for s in dataset.samples])
    return features.astype(np.float32), dataset.labels().astype(np.float32)
