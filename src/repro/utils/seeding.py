"""Deterministic random-generator management.

Experiments involve several stochastic components (catalogue, schedule,
noise, weight init, batch order).  Spawning independent child generators
from one root seed keeps every component reproducible *and* decoupled —
changing the number of draws in one component does not shift another's
stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs"]


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed."""
    if n <= 0:
        raise ValueError("n must be positive")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
