"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned monospace table.

    Cells are stringified; floats keep their given formatting (format
    before passing when specific precision is wanted).
    """
    if not headers:
        raise ValueError("headers must not be empty")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must match the header length")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
