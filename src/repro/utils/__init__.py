"""Small shared utilities: seeding and result tables."""

from .seeding import spawn_rngs
from .tables import format_table

__all__ = ["spawn_rngs", "format_table"]
