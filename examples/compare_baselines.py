"""Compare the proposed classifier with classical photometric methods
(the Table 2 experiment at example scale).

Runs four methods on one synthetic test set:

* Bayesian single-epoch classification (Poznanski-style), with and
  without a known redshift;
* chi^2 multi-epoch template fitting (Sullivan-style);
* the proposed highway-network classifier, single-epoch and 4-epoch.

Run:  python examples/compare_baselines.py
"""

import numpy as np

from repro.baselines import PoznanskiClassifier, TemplateFitClassifier, TemplateFluxGrid
from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score
from repro.utils import format_table

FLUX_ERR = 1.5


def proposed_auc(splits, k_epochs: int, seed: int) -> float:
    x_train, y_train = dataset_windowed_features(splits.train, k_epochs)
    x_val, y_val = dataset_windowed_features(splits.val, k_epochs)
    x_test, y_test = dataset_windowed_features(splits.test, k_epochs)
    clf = LightCurveClassifier(
        input_dim=x_train.shape[1], units=100, rng=np.random.default_rng(seed)
    )
    fit_classifier(
        clf, x_train, y_train,
        TrainConfig(epochs=40, batch_size=128, seed=seed, early_stopping_patience=8),
        x_val, y_val, metric=auc_score,
    )
    return auc_score(y_test, clf.predict_proba(x_test))


def main() -> None:
    print("building light-curve dataset (800 + 800, no images)...")
    dataset = DatasetBuilder(
        BuildConfig(n_ia=800, n_non_ia=800, seed=11, render_images=False)
    ).build()
    splits = train_val_test_split(dataset, seed=12)
    test = splits.test

    rng = np.random.default_rng(13)
    flux = test.true_flux + rng.normal(0, FLUX_ERR, test.true_flux.shape)
    err = np.full(flux.shape, FLUX_ERR)

    print("precomputing template flux grids...")
    grid = TemplateFluxGrid()
    rows = []

    epoch1 = np.arange(5, 10)
    args = (flux[:, epoch1], err[:, epoch1], test.visit_mjd[:, epoch1], test.visit_band[:, epoch1])
    print("scoring Bayesian single-epoch classifier (no redshift)...")
    p = PoznanskiClassifier(grid).predict_proba(*args)
    rows.append(["Bayesian single-epoch, no z", f"{auc_score(test.labels, p):.3f}"])
    print("scoring Bayesian single-epoch classifier (known redshift)...")
    p = PoznanskiClassifier(grid, known_redshift=True).predict_proba(*args, test.redshifts)
    rows.append(["Bayesian single-epoch, + z", f"{auc_score(test.labels, p):.3f}"])

    print("scoring chi^2 template fitting (4 epochs)...")
    p = TemplateFitClassifier(grid).predict_proba(flux, err, test.visit_mjd, test.visit_band)
    rows.append(["Template fit 4-epoch, no z", f"{auc_score(test.labels, p):.3f}"])

    print("training the proposed classifier (single-epoch)...")
    rows.append(["Proposed single-epoch, no z", f"{proposed_auc(splits, 1, 21):.3f}"])
    print("training the proposed classifier (4 epochs)...")
    rows.append(["Proposed 4-epoch, no z", f"{proposed_auc(splits, 4, 22):.3f}"])

    print()
    print(format_table(["Method", "AUC"], rows, title="Table 2 at example scale"))


if __name__ == "__main__":
    main()
