"""Build and inspect the paper's imaging dataset (Section 3).

Renders a small version of the full dataset — host galaxies from the
synthetic COSMOS catalogue, supernovae embedded with per-night PSF/noise,
PSF-matched references — then prints the Fig. 3/4/5-style summary
statistics and saves the dataset to an ``.npz`` archive that the other
examples can reuse.

Run:  python examples/build_dataset.py [output.npz]
"""

import sys
import time

import numpy as np

from repro.datasets import BuildConfig, DatasetBuilder, save_dataset


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "supernova_dataset.npz"

    config = BuildConfig(n_ia=50, n_non_ia=50, seed=7)
    print(f"building {config.n_ia} SNIa + {config.n_non_ia} non-Ia samples "
          f"({config.imaging.stamp_size}x{config.imaging.stamp_size} stamps, "
          f"{config.epochs_per_band} epochs x 5 bands)...")
    start = time.time()
    dataset = DatasetBuilder(config).build(verbose=True)
    print(f"done in {time.time() - start:.1f}s -> {dataset.summary()}")

    # Fig. 3-style: redshift distribution of the dataset hosts.
    z = dataset.redshifts
    print(f"\nredshifts: min {z.min():.2f}, median {np.median(z):.2f}, max {z.max():.2f}")

    # Fig. 4-style: SN offsets within hosts.
    radii = np.hypot(dataset.sn_offset[:, 0], dataset.sn_offset[:, 1])
    print(f"SN offsets from host centre: median {np.median(radii):.2f}\", "
          f"95% < {np.percentile(radii, 95):.2f}\"")

    # Fig. 5-style: how well does differencing isolate the supernova?
    diffs = dataset.difference_images()
    c = dataset.stamp_size // 2
    rows, cols = np.mgrid[: dataset.stamp_size, : dataset.stamp_size]
    aperture = (rows - c) ** 2 + (cols - c) ** 2 <= 9**2
    bright = dataset.true_flux > 30
    recovered = diffs[:, :, aperture].sum(axis=-1)[bright]
    truth = dataset.true_flux[bright]
    print(f"difference-image photometry on bright visits: "
          f"median recovered/true = {np.median(recovered / truth):.2f}")

    # Per-type composition.
    types, counts = np.unique(dataset.sn_types, return_counts=True)
    print("type composition:", dict(zip(types.tolist(), counts.tolist())))

    save_dataset(dataset, out_path)
    print(f"\nsaved to {out_path}")


if __name__ == "__main__":
    main()
