"""Quickstart: build a synthetic supernova dataset and classify SNeIa
from single-epoch light-curve features.

This is the fastest tour of the library (about a minute on a laptop):

1. generate a light-curve-only dataset (no image rendering);
2. train the paper's highway-network classifier on ground-truth
   single-epoch features (the Fig. 9/10 protocol);
3. report the test ROC AUC against the paper's 0.958.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score, roc_curve


def main() -> None:
    print("1. building a synthetic dataset (1000 SNIa + 1000 non-Ia, no images)...")
    config = BuildConfig(n_ia=1000, n_non_ia=1000, seed=0, render_images=False)
    dataset = DatasetBuilder(config).build()
    print(f"   {dataset.summary()}")

    splits = train_val_test_split(dataset, seed=1)
    print(f"   {splits}")

    print("2. extracting single-epoch light-curve features (flux + date per band)...")
    x_train, y_train = dataset_windowed_features(splits.train, k_epochs=1)
    x_val, y_val = dataset_windowed_features(splits.val, k_epochs=1)
    x_test, y_test = dataset_windowed_features(splits.test, k_epochs=1)
    print(f"   train {x_train.shape}, val {x_val.shape}, test {x_test.shape}")

    print("3. training the highway-network classifier (Fig. 6 architecture)...")
    classifier = LightCurveClassifier(
        input_dim=x_train.shape[1], units=100, rng=np.random.default_rng(2)
    )
    history = fit_classifier(
        classifier,
        x_train,
        y_train,
        TrainConfig(epochs=40, batch_size=128, seed=3, early_stopping_patience=8),
        x_val,
        y_val,
        metric=auc_score,
    )
    print(f"   stopped after {history.n_epochs} epochs, best val AUC "
          f"{max(history.val_metric):.3f}")

    scores = classifier.predict_proba(x_test)
    curve = roc_curve(y_test, scores)
    print(f"4. test AUC = {curve.auc:.3f}  (paper, single-epoch GT features: 0.958)")
    print(f"   TPR at FPR=0.1: {curve.tpr_at_fpr(0.1):.3f}")


if __name__ == "__main__":
    main()
