"""The full survey pipeline upstream of type classification.

The paper's introduction describes four stages; this example runs the
first three on simulated data:

1. image a sky region in one band (host galaxy + possible supernova);
2. PSF-match and subtract the reference, then detect transient
   candidates with a matched filter;
3. reject "bogus" candidates (mis-subtraction dipoles, cosmic rays)
   with a random-forest real/bogus classifier — Section 2's context,
   where only ~0.1% of raw candidates are real.

Stage 4 (type classification) is what the rest of the library does.

Run:  python examples/detection_pipeline.py
"""

import numpy as np

from repro.baselines import RealBogusClassifier
from repro.catalog import CosmosCatalog, HostSelector
from repro.eval import auc_score, confusion_matrix
from repro.photometry import band_by_name
from repro.survey import (
    GaussianPSF,
    StampSimulator,
    detect_transients,
    difference_images,
    make_bogus_stamp,
)


def render_difference(sim, placement, flux, rng):
    """Observation + reference -> PSF-matched difference stamp."""
    band = band_by_name("i")
    night = sim.conditions.sample(57000.0, rng)
    obs = sim.observe(placement, band, flux, night, rng)
    ref = sim.reference(placement, band, rng)
    return difference_images(
        ref.pixels.astype(float), obs.pixels.astype(float),
        ref.conditions.seeing_fwhm, night.seeing_fwhm,
    ).difference


def main() -> None:
    rng = np.random.default_rng(0)
    catalog = CosmosCatalog(500, seed=1)
    selector = HostSelector(catalog)
    sim = StampSimulator()
    noise = sim.noise.pixel_sigma(band_by_name("i"), sim.config.pixel_scale)

    psf_size = 21
    c = (psf_size - 1) / 2.0
    kernel = GaussianPSF(0.7).render((psf_size, psf_size), (c, c))
    kernel /= kernel.sum()

    # --- Stage 2: detection on difference images -----------------------
    print("stage 2: matched-filter detection on 40 difference stamps...")
    found, missed = 0, 0
    for i in range(40):
        placement = selector.sample(rng)
        flux = rng.uniform(25, 120)
        diff = render_difference(sim, placement, flux, rng)
        detections = detect_transients(diff, kernel, noise, threshold=5.0)
        hit = any(abs(d.row - 32) <= 2 and abs(d.col - 32) <= 2 for d in detections)
        found += hit
        missed += not hit
    print(f"  recovered {found}/40 injected supernovae at 5-sigma "
          f"({missed} below threshold)")

    # --- Stage 3: real/bogus rejection ---------------------------------
    print("stage 3: training the real/bogus random forest...")

    def make_set(n, seed):
        local = np.random.default_rng(seed)
        stamps, labels = [], []
        for _ in range(n):
            placement = selector.sample(local)
            flux = local.uniform(20, 120)
            stamps.append(render_difference(sim, placement, flux, local))
            labels.append(1.0)
            stamps.append(make_bogus_stamp((65, 65), noise, local))
            labels.append(0.0)
        return np.array(stamps), np.array(labels)

    train_stamps, train_labels = make_set(80, seed=2)
    test_stamps, test_labels = make_set(40, seed=3)
    clf = RealBogusClassifier(n_trees=60, seed=4).fit(train_stamps, train_labels)
    scores = clf.predict_proba(test_stamps)
    auc = auc_score(test_labels, scores)
    cm = confusion_matrix(test_labels, scores, threshold=0.5)
    print(f"  real/bogus AUC {auc:.3f}; at threshold 0.5: "
          f"TPR {cm.true_positive_rate:.2f}, FPR {cm.false_positive_rate:.2f}")
    print("  (literature context: random forests reach TPR ~0.92 at FPR 0.01;")
    print("   Morii et al. 2016 deep nets: FPR 0.0085 at TPR 0.9)")


if __name__ == "__main__":
    main()
