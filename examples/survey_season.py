"""Simulate a full survey season end to end — the LSST-scale motivation.

The paper closes its introduction with the LSST forecast of >200K SNeIa
per year; what matters operationally is the *per-redshift completeness
and purity* a single-epoch classifier delivers.  This example runs the
whole chain on one simulated season:

1. generate supernovae in hosts over a redshift range;
2. render difference stamps and run matched-filter detection
   (five-sigma, like the survey pipeline);
3. classify detected objects with the single-epoch classifier;
4. report detection completeness and classification quality per
   redshift bin.

Run:  python examples/survey_season.py
"""

import numpy as np

from repro.core import LightCurveClassifier, TrainConfig, fit_classifier
from repro.core.features import dataset_windowed_features
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score
from repro.photometry import band_by_name
from repro.survey import GaussianPSF, detect_transients


def main() -> None:
    rng = np.random.default_rng(0)

    print("1. generating a season of supernovae (images for the detection study,")
    print("   light curves for the classification study)...")
    image_ds = DatasetBuilder(BuildConfig(n_ia=40, n_non_ia=40, seed=41)).build()
    lc_ds = DatasetBuilder(
        BuildConfig(n_ia=1200, n_non_ia=1200, seed=42, render_images=False)
    ).build()

    print("2. matched-filter detection on the peak-epoch difference stamps...")
    band_i = band_by_name("i")
    kernel = GaussianPSF(0.7).render((21, 21), (10.0, 10.0))
    kernel /= kernel.sum()
    sim_noise = 0.45  # typical i-band pixel sigma of the simulation

    z_bins = [(0.1, 0.5), (0.5, 0.9), (0.9, 1.4), (1.4, 2.0)]
    diffs = image_ds.difference_images()
    brightest_visit = image_ds.true_flux.argmax(axis=1)
    print("   detection completeness by redshift (at the brightest visit):")
    for lo, hi in z_bins:
        sel = (image_ds.redshifts >= lo) & (image_ds.redshifts < hi)
        if not sel.any():
            continue
        found = 0
        for idx in np.flatnonzero(sel):
            diff = diffs[idx, brightest_visit[idx]].astype(float)
            detections = detect_transients(diff, kernel, sim_noise, threshold=5.0)
            found += any(
                abs(d.row - 32) <= 2 and abs(d.col - 32) <= 2 for d in detections
            )
        print(f"     z {lo:.1f}-{hi:.1f}: {found}/{sel.sum()}")

    print("3. training the single-epoch classifier on the season's light curves...")
    splits = train_val_test_split(lc_ds, seed=43)
    x_train, y_train = dataset_windowed_features(splits.train, 1)
    x_val, y_val = dataset_windowed_features(splits.val, 1)
    clf = LightCurveClassifier(input_dim=10, units=100, rng=np.random.default_rng(44))
    fit_classifier(
        clf, x_train, y_train,
        TrainConfig(epochs=40, batch_size=128, seed=45, early_stopping_patience=8),
        x_val, y_val, metric=auc_score,
    )

    print("4. classification quality by redshift (single epoch, no redshift input):")
    test = splits.test
    x_test, y_test = dataset_windowed_features(test, 1)
    scores = clf.predict_proba(x_test)
    z_rep = np.tile(test.redshifts, test.n_epochs)
    for lo, hi in z_bins:
        sel = (z_rep >= lo) & (z_rep < hi)
        if sel.sum() < 20 or y_test[sel].min() == y_test[sel].max():
            continue
        print(f"     z {lo:.1f}-{hi:.1f}: AUC {auc_score(y_test[sel], scores[sel]):.3f} "
              f"(n={int(sel.sum())})")
    print(f"   overall single-epoch AUC: {auc_score(y_test, scores):.3f}")


if __name__ == "__main__":
    main()
