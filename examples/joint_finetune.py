"""End-to-end classification from images: the joint model (Figs. 11-12).

Runs the paper's full three-stage method:

1. pre-train the band-wise CNN flux estimator on stamp pairs;
2. pre-train the classifier on CNN-estimated light-curve features;
3. glue them into the joint network and fine-tune end to end —
   then compare against training the same joint architecture from
   scratch (the Fig. 12 ablation).

Run:  python examples/joint_finetune.py
(this is the most expensive example; expect ~10 minutes on a laptop)
"""

import time

import numpy as np

from repro.core import SupernovaPipeline, TrainConfig
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split

N_PER_CLASS = 80


def main() -> None:
    print(f"building imaging dataset ({2 * N_PER_CLASS} samples)...")
    dataset = DatasetBuilder(
        BuildConfig(n_ia=N_PER_CLASS, n_non_ia=N_PER_CLASS, seed=31)
    ).build()
    splits = train_val_test_split(dataset, seed=32)

    pipe = SupernovaPipeline(input_size=60, units=100, epochs_used=1, seed=33)

    print("stage 1: pre-training the flux CNN...")
    start = time.time()
    pipe.fit_flux_cnn(
        splits.train, splits.val,
        TrainConfig(epochs=8, batch_size=64, learning_rate=5e-4, seed=34,
                    early_stopping_patience=3, verbose=True),
        min_flux=2.0,
    )
    print(f"  ({time.time() - start:.0f}s)")

    print("stage 2: pre-training the classifier on CNN-estimated features...")
    h2 = pipe.fit_classifier(
        splits.train, splits.val,
        TrainConfig(epochs=50, batch_size=64, seed=35, early_stopping_patience=10),
    )
    print(f"  best val AUC {max(h2.val_metric):.3f}")
    two_stage_auc = pipe.evaluate_auc(splits.test, use_joint=False)
    print(f"  two-stage test AUC: {two_stage_auc:.3f}")

    print("stage 3: fine-tuning the joint model (paper strategy)...")
    config = TrainConfig(epochs=3, batch_size=32, learning_rate=3e-4, seed=36, verbose=True)
    h_ft = pipe.fine_tune(splits.train, splits.val, config)
    joint_auc = pipe.evaluate_auc(splits.test)

    print("comparison: training the same joint network from scratch...")
    scratch = SupernovaPipeline(input_size=60, units=100, epochs_used=1, seed=37)
    h_sc = scratch.fine_tune(splits.train, splits.val, config, from_scratch=True)
    scratch_auc = scratch.evaluate_auc(splits.test)

    print("\nFig. 12 summary (loss per epoch):")
    for epoch, (ft, sc) in enumerate(zip(h_ft.train_loss, h_sc.train_loss), start=1):
        print(f"  epoch {epoch}: fine-tune {ft:.4f}  vs  scratch {sc:.4f}")
    print(f"\ntest AUC: joint fine-tuned {joint_auc:.3f} (paper: 0.897)")
    print(f"          joint from scratch {scratch_auc:.3f} (paper: worse, slower)")
    print(f"          two-stage (no fine-tuning) {two_stage_auc:.3f}")


if __name__ == "__main__":
    main()
