"""Select spectroscopic follow-up targets with calibrated probabilities.

The paper's motivation: at most ~100 of over 10^7 candidates can get
spectroscopic follow-up, so the classifier's P(SNIa) is used to spend
that budget.  This example

1. trains the single-epoch classifier,
2. calibrates its probabilities with temperature scaling on the
   validation split (reporting expected calibration error before/after),
3. simulates a follow-up campaign: pick the top-B candidates by
   calibrated probability and measure the SNIa purity of the selection.

Run:  python examples/followup_selection.py
"""

import numpy as np

from repro.core import (
    LightCurveClassifier,
    TemperatureScaler,
    TrainConfig,
    fit_classifier,
)
from repro.core.features import dataset_windowed_features
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split
from repro.eval import auc_score, expected_calibration_error
from repro.nn import Tensor, no_grad

FOLLOWUP_BUDGET = 50


def main() -> None:
    print("building dataset and training the single-epoch classifier...")
    dataset = DatasetBuilder(
        BuildConfig(n_ia=800, n_non_ia=800, seed=21, render_images=False)
    ).build()
    splits = train_val_test_split(dataset, seed=22)

    x_train, y_train = dataset_windowed_features(splits.train, k_epochs=1)
    x_val, y_val = dataset_windowed_features(splits.val, k_epochs=1)
    x_test, y_test = dataset_windowed_features(splits.test, k_epochs=1)

    clf = LightCurveClassifier(input_dim=10, units=100, rng=np.random.default_rng(23))
    fit_classifier(
        clf, x_train, y_train,
        TrainConfig(epochs=40, batch_size=128, seed=24, early_stopping_patience=8),
        x_val, y_val, metric=auc_score,
    )

    def logits_of(x):
        with no_grad():
            return clf(Tensor(x)).numpy()

    print("calibrating with temperature scaling on the validation split...")
    scaler = TemperatureScaler().fit(logits_of(x_val), y_val)
    raw_probs = 1 / (1 + np.exp(-logits_of(x_test)))
    cal_probs = scaler.transform(logits_of(x_test))
    print(f"  fitted temperature: {scaler.temperature:.2f}")
    print(f"  test ECE raw {expected_calibration_error(y_test, raw_probs):.3f} "
          f"-> calibrated {expected_calibration_error(y_test, cal_probs):.3f}")
    print(f"  test AUC {auc_score(y_test, cal_probs):.3f} "
          "(ranking unchanged by calibration)")

    print(f"\nsimulated follow-up campaign (budget: {FOLLOWUP_BUDGET} targets):")
    order = np.argsort(-cal_probs)[:FOLLOWUP_BUDGET]
    purity = y_test[order].mean()
    base_rate = y_test.mean()
    print(f"  SNIa purity of selected targets: {purity:.2f} "
          f"(random selection would give {base_rate:.2f})")
    print(f"  expected SNeIa found: {purity * FOLLOWUP_BUDGET:.0f} / {FOLLOWUP_BUDGET}")


if __name__ == "__main__":
    main()
