"""Train the band-wise CNN magnitude estimator (Fig. 7 / Fig. 8).

Builds an imaging dataset, trains the convolutional flux estimator on
(reference, observation) stamp pairs with dihedral/crop augmentation,
and prints the Fig. 8-style error breakdown: estimation error versus
true magnitude, with the paper's characteristic growth toward faint
objects.

Run:  python examples/flux_estimation.py
(takes several minutes on a laptop; reduce N_PER_CLASS for a faster run)
"""

import time

import numpy as np

from repro.core import BandwiseCNN, TrainConfig, fit_regressor, make_pair_augmenter
from repro.datasets import BuildConfig, DatasetBuilder, train_val_test_split

N_PER_CLASS = 100
INPUT_SIZE = 60


def main() -> None:
    print(f"building imaging dataset ({2 * N_PER_CLASS} samples)...")
    config = BuildConfig(n_ia=N_PER_CLASS, n_non_ia=N_PER_CLASS, seed=3)
    dataset = DatasetBuilder(config).build()
    splits = train_val_test_split(dataset, seed=4)

    x_train, y_train, m_train = splits.train.flux_pairs(min_flux=2.0)
    x_val, y_val, m_val = splits.val.flux_pairs(min_flux=2.0)
    x_test, y_test, m_test = splits.test.flux_pairs(min_flux=2.0)
    print(f"visible training pairs: {int(m_train.sum())}")

    cnn = BandwiseCNN(input_size=INPUT_SIZE, rng=np.random.default_rng(5))
    print(f"training the band-wise CNN ({cnn.num_parameters():,} parameters)...")
    start = time.time()
    fit_regressor(
        cnn,
        x_train[m_train],
        y_train[m_train],
        TrainConfig(
            epochs=12, batch_size=64, learning_rate=5e-4, seed=6,
            early_stopping_patience=4, verbose=True,
        ),
        x_val[m_val],
        y_val[m_val],
        augment_fn=make_pair_augmenter(INPUT_SIZE),
    )
    print(f"trained in {time.time() - start:.0f}s")

    pred = cnn.predict(x_test[m_test])
    truth = y_test[m_test]
    err = pred - truth
    print(f"\ntest mean |error|: {np.mean(np.abs(err)):.3f} mag "
          f"(paper: 0.087 at 100x training scale)")
    print("error vs true magnitude (Fig. 8 structure):")
    for lo, hi in [(20.0, 23.0), (23.0, 24.0), (24.0, 25.0), (25.0, 26.5)]:
        mask = (truth >= lo) & (truth < hi)
        if mask.sum():
            print(f"  mag {lo:.0f}-{hi:.0f}: mean|err| {np.abs(err[mask]).mean():.3f} "
                  f"bias {err[mask].mean():+.3f}  (n={int(mask.sum())})")


if __name__ == "__main__":
    main()
